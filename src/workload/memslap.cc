/**
 * @file
 * memslap-like driver implementation.
 */

#include "workload/memslap.h"

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/rng.h"
#include "common/timer.h"
#include "mc/binary_protocol.h"
#include "net/client.h"
#include "net/cluster.h"

namespace tmemc::workload
{

void
formatKey(char *out, std::size_t key_size, std::uint32_t thread,
          std::uint64_t index)
{
    // Fixed-width keys, zero-padded, like memslap's generated keys.
    const int n = std::snprintf(out, key_size + 1, "k%03u-%016llx",
                                thread,
                                static_cast<unsigned long long>(index));
    for (std::size_t i = static_cast<std::size_t>(n); i < key_size; ++i)
        out[i] = 'x';
    out[key_size] = '\0';
}

namespace
{

/** Fill a deterministic printable value. */
void
formatValue(char *out, std::size_t value_size, std::uint32_t thread,
            std::uint64_t index)
{
    for (std::size_t i = 0; i < value_size; ++i) {
        out[i] = static_cast<char>('a' + ((thread + index + i) % 26));
    }
}

/** One network worker's counters. */
struct NetCounters
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t failures = 0;
    std::uint64_t lost = 0;
};

/** Issue one SET over the wire; classify the outcome. */
void
netSet(net::Client &client, bool binary, const std::string &key,
       const char *val, std::size_t vlen, NetCounters &ctr)
{
    if (binary) {
        const std::string reply = client.roundTripBinary(
            mc::binSetRequest(key, std::string(val, vlen)));
        if (reply.empty()) {
            ++ctr.lost;
            return;
        }
        mc::BinResponse r;
        if (mc::binParseResponse(reply, r) == 0 ||
            r.status != mc::BinStatus::Ok)
            ++ctr.failures;
        return;
    }
    std::string req = "set " + key + " 0 0 " + std::to_string(vlen) +
                      "\r\n";
    req.append(val, vlen);
    req.append("\r\n");
    const std::string reply = client.roundTripAscii(req);
    if (reply.empty())
        ++ctr.lost;
    else if (reply != "STORED\r\n")
        ++ctr.failures;
}

/** Issue one GET over the wire; classify the outcome. */
void
netGet(net::Client &client, bool binary, const std::string &key,
       NetCounters &ctr)
{
    if (binary) {
        const std::string reply = client.roundTripBinary(
            mc::binRequest(mc::BinOp::Get, key));
        if (reply.empty()) {
            ++ctr.lost;
            return;
        }
        mc::BinResponse r;
        if (mc::binParseResponse(reply, r) != 0 &&
            r.status == mc::BinStatus::Ok)
            ++ctr.hits;
        else
            ++ctr.misses;
        return;
    }
    const std::string reply =
        client.roundTripAscii("get " + key + "\r\n");
    if (reply.empty())
        ++ctr.lost;
    else if (reply.compare(0, 6, "VALUE ") == 0)
        ++ctr.hits;
    else
        ++ctr.misses;
}

/** Sequence-stamped cluster value: "s<seq-hex>-t<thread>" + padding.
 *  The stamp is what makes lost acked updates detectable: every write
 *  of a key carries a strictly increasing sequence, so any read can
 *  be compared against the newest acknowledged one. */
std::string
clusterValue(std::uint32_t thread, std::uint64_t seq,
             std::size_t value_size)
{
    char buf[48];
    const int n = std::snprintf(buf, sizeof(buf), "s%016llx-t%03u",
                                static_cast<unsigned long long>(seq),
                                thread);
    std::string v(buf, static_cast<std::size_t>(n));
    if (v.size() < value_size)
        v.append(value_size - v.size(), 'y');
    return v;
}

/** Parse the sequence stamp back out; ~0 on a foreign value. */
std::uint64_t
clusterValueSeq(const std::string &v)
{
    if (v.empty() || v[0] != 's')
        return ~0ull;
    return std::strtoull(v.c_str() + 1, nullptr, 16);
}

/** No acknowledged write yet for this key. */
constexpr std::uint64_t kNoAck = ~0ull;

} // namespace

MemslapResult
runMemslapCluster(const MemslapCfg &cfg)
{
    const std::uint32_t threads = cfg.concurrency == 0 ? 1
                                                       : cfg.concurrency;
    net::ClusterCfg ccfg;
    for (const std::string &ep : cfg.clusterNodes) {
        const std::size_t colon = ep.rfind(':');
        net::ClusterNode node;
        node.host = colon == std::string::npos ? ep : ep.substr(0, colon);
        node.port = colon == std::string::npos
                        ? 0
                        : static_cast<std::uint16_t>(std::strtoul(
                              ep.c_str() + colon + 1, nullptr, 10));
        ccfg.nodes.push_back(std::move(node));
    }
    ccfg.replicas = cfg.clusterReplicas;
    ccfg.nodeTimeoutMs = cfg.nodeTimeoutMs;
    // Whole-op budget: generous relative to the per-attempt bound so
    // a slow primary cannot starve the replica leg of a write fan-out
    // (a starved replica leg turns into single-copy acks, which the
    // kill-a-node gate then depends on surviving).
    ccfg.requestDeadlineMs =
        std::max<std::uint32_t>(cfg.recvTimeoutMs, 8 * cfg.nodeTimeoutMs);
    net::Cluster cluster(ccfg);

    const std::uint64_t before_lag = cluster.stats().replica_lag;

    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> hits{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> misses{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> failures{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> lost{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> lost_acked{0};

    // ------------------------------------------------------------------
    // Warm phase (unmeasured) — but acks recorded here already count:
    // a warm write the cluster acknowledged must survive the run too.
    // ------------------------------------------------------------------
    std::vector<std::vector<std::uint64_t>> acked(
        threads,
        std::vector<std::uint64_t>(cfg.windowSize, kNoAck));
    {
        std::vector<std::thread> warmers;
        for (std::uint32_t t = 0; t < threads; ++t) {
            warmers.emplace_back([&, t] {
                std::vector<char> key(cfg.keySize + 1);
                for (std::uint64_t i = 0; i < cfg.windowSize; ++i) {
                    formatKey(key.data(), cfg.keySize, t, i);
                    const auto res = cluster.set(
                        std::string(key.data(), cfg.keySize),
                        clusterValue(t, i, cfg.valueSize));
                    if (res.status == net::ClusterStatus::Ok)
                        acked[t][i] = i;
                    else
                        lost.fetch_add(1, std::memory_order_relaxed);
                }
            });
        }
        for (auto &w : warmers)
            w.join();
    }

    // ------------------------------------------------------------------
    // Measured phase: set/get only (see MemslapCfg::clusterNodes).
    // ------------------------------------------------------------------
    WallTimer timer;
    std::vector<std::thread> workers;
    for (std::uint32_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            XorShift128 rng(cfg.seed * 1315423911u + t);
            ZipfSampler *zipf = nullptr;
            ZipfSampler zipf_storage(
                cfg.zipfTheta > 0 ? cfg.windowSize : 1,
                cfg.zipfTheta > 0 ? cfg.zipfTheta : 1.0);
            if (cfg.zipfTheta > 0)
                zipf = &zipf_storage;

            std::vector<char> key(cfg.keySize + 1);
            NetCounters ctr;
            std::uint64_t local_lost_acked = 0;
            for (std::uint64_t i = 0; i < cfg.executeNumber; ++i) {
                const std::uint64_t idx =
                    zipf ? zipf->sample(rng)
                         : rng.nextBounded(cfg.windowSize);
                formatKey(key.data(), cfg.keySize, t, idx);
                const std::string k(key.data(), cfg.keySize);
                if (rng.nextDouble() < cfg.setFraction) {
                    const std::uint64_t seq = cfg.windowSize + i;
                    const auto res = cluster.set(
                        k, clusterValue(t, seq, cfg.valueSize));
                    if (res.status == net::ClusterStatus::Ok)
                        acked[t][idx] = seq;  // Monotonic: same thread.
                    else
                        ++ctr.lost;  // Indeterminate, not counted acked.
                } else {
                    const auto res = cluster.get(k);
                    if (res.status == net::ClusterStatus::Ok) {
                        ++ctr.hits;
                        // Single-writer key + sequential thread: the
                        // value read now must be at least as new as
                        // the newest ack this thread recorded.
                        const std::uint64_t seen =
                            clusterValueSeq(res.value);
                        if (acked[t][idx] != kNoAck &&
                            seen != ~0ull && seen < acked[t][idx])
                            ++local_lost_acked;
                    } else if (res.status == net::ClusterStatus::Miss) {
                        ++ctr.misses;
                        if (acked[t][idx] != kNoAck)
                            ++local_lost_acked;
                    } else {
                        ++ctr.lost;
                    }
                }
            }
            hits.fetch_add(ctr.hits, std::memory_order_relaxed);
            misses.fetch_add(ctr.misses, std::memory_order_relaxed);
            failures.fetch_add(ctr.failures, std::memory_order_relaxed);
            lost.fetch_add(ctr.lost, std::memory_order_relaxed);
            lost_acked.fetch_add(local_lost_acked,
                                 std::memory_order_relaxed);
        });
    }
    for (auto &w : workers)
        w.join();
    const double measured = timer.elapsedSeconds();

    // ------------------------------------------------------------------
    // Read-back pass (unmeasured): every key with an acked write must
    // still be readable at that sequence or newer.
    // ------------------------------------------------------------------
    {
        std::vector<std::thread> readers;
        for (std::uint32_t t = 0; t < threads; ++t) {
            readers.emplace_back([&, t] {
                std::vector<char> key(cfg.keySize + 1);
                std::uint64_t local_lost_acked = 0;
                for (std::uint64_t i = 0; i < cfg.windowSize; ++i) {
                    if (acked[t][i] == kNoAck)
                        continue;
                    formatKey(key.data(), cfg.keySize, t, i);
                    const auto res = cluster.get(
                        std::string(key.data(), cfg.keySize));
                    if (res.status == net::ClusterStatus::Ok) {
                        const std::uint64_t seen =
                            clusterValueSeq(res.value);
                        if (seen != ~0ull && seen < acked[t][i])
                            ++local_lost_acked;
                    } else if (res.status ==
                               net::ClusterStatus::Miss) {
                        ++local_lost_acked;
                    }
                    // NetFail read-backs are inconclusive, not lost.
                }
                lost_acked.fetch_add(local_lost_acked,
                                     std::memory_order_relaxed);
            });
        }
        for (auto &r : readers)
            r.join();
    }

    MemslapResult res;
    res.seconds = measured;
    res.ops = static_cast<std::uint64_t>(threads) * cfg.executeNumber;
    res.hits = hits.load(std::memory_order_relaxed);
    res.misses = misses.load(std::memory_order_relaxed);
    res.failures = failures.load(std::memory_order_relaxed);
    res.lostResponses = lost.load(std::memory_order_relaxed);
    res.lostAckedUpdates = lost_acked.load(std::memory_order_relaxed);
    res.clusterStats = cluster.stats();
    res.degradedWrites = res.clusterStats.replica_lag - before_lag;
    return res;
}

MemslapResult
runMemslapNet(const MemslapCfg &cfg)
{
    const std::uint32_t threads = cfg.concurrency == 0 ? 1
                                                       : cfg.concurrency;

    // ------------------------------------------------------------------
    // Warm phase over the wire (unmeasured).
    // ------------------------------------------------------------------
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> warm_lost{0};
    {
        std::vector<std::thread> warmers;
        for (std::uint32_t t = 0; t < threads; ++t) {
            warmers.emplace_back([&, t] {
                net::Client client;
                if (!client.connect(cfg.serverHost, cfg.serverPort,
                                    cfg.connectTimeoutMs)) {
                    warm_lost.fetch_add(cfg.windowSize,
                                        std::memory_order_relaxed);
                    return;
                }
                client.setRecvTimeout(cfg.recvTimeoutMs);
                std::vector<char> key(cfg.keySize + 1);
                std::vector<char> val(cfg.valueSize);
                NetCounters ctr;
                for (std::uint64_t i = 0; i < cfg.windowSize; ++i) {
                    formatKey(key.data(), cfg.keySize, t, i);
                    formatValue(val.data(), cfg.valueSize, t, i);
                    netSet(client, cfg.binaryProtocol,
                           std::string(key.data(), cfg.keySize),
                           val.data(), cfg.valueSize, ctr);
                }
                warm_lost.fetch_add(ctr.lost, std::memory_order_relaxed);
            });
        }
        for (auto &w : warmers)
            w.join();
    }

    // ------------------------------------------------------------------
    // Measured phase.
    // ------------------------------------------------------------------
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> hits{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> misses{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> failures{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> lost{0};

    WallTimer timer;
    std::vector<std::thread> workers;
    for (std::uint32_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            net::Client client;
            if (!client.connect(cfg.serverHost, cfg.serverPort,
                                cfg.connectTimeoutMs)) {
                lost.fetch_add(cfg.executeNumber,
                               std::memory_order_relaxed);
                return;
            }
            client.setRecvTimeout(cfg.recvTimeoutMs);
            XorShift128 rng(cfg.seed * 1315423911u + t);
            ZipfSampler *zipf = nullptr;
            ZipfSampler zipf_storage(
                cfg.zipfTheta > 0 ? cfg.windowSize : 1,
                cfg.zipfTheta > 0 ? cfg.zipfTheta : 1.0);
            if (cfg.zipfTheta > 0)
                zipf = &zipf_storage;

            std::vector<char> key(cfg.keySize + 1);
            std::vector<char> val(cfg.valueSize);
            NetCounters ctr;
            for (std::uint64_t i = 0; i < cfg.executeNumber; ++i) {
                const std::uint64_t idx =
                    zipf ? zipf->sample(rng)
                         : rng.nextBounded(cfg.windowSize);
                formatKey(key.data(), cfg.keySize, t, idx);
                const std::string k(key.data(), cfg.keySize);
                const double roll = rng.nextDouble();
                if (roll < cfg.setFraction) {
                    formatValue(val.data(), cfg.valueSize, t, idx);
                    netSet(client, cfg.binaryProtocol, k, val.data(),
                           cfg.valueSize, ctr);
                } else if (roll <
                           cfg.setFraction + cfg.deleteFraction) {
                    const std::string reply =
                        cfg.binaryProtocol
                            ? client.roundTripBinary(mc::binRequest(
                                  mc::BinOp::Delete, k))
                            : client.roundTripAscii("delete " + k +
                                                    "\r\n");
                    if (reply.empty())
                        ++ctr.lost;
                } else {
                    netGet(client, cfg.binaryProtocol, k, ctr);
                }
            }
            hits.fetch_add(ctr.hits, std::memory_order_relaxed);
            misses.fetch_add(ctr.misses, std::memory_order_relaxed);
            failures.fetch_add(ctr.failures,
                               std::memory_order_relaxed);
            lost.fetch_add(ctr.lost, std::memory_order_relaxed);
        });
    }
    for (auto &w : workers)
        w.join();

    MemslapResult res;
    res.seconds = timer.elapsedSeconds();
    res.ops = static_cast<std::uint64_t>(threads) * cfg.executeNumber;
    res.hits = hits.load(std::memory_order_relaxed);
    res.misses = misses.load(std::memory_order_relaxed);
    res.failures = failures.load(std::memory_order_relaxed);
    res.lostResponses = lost.load(std::memory_order_relaxed) + warm_lost.load(std::memory_order_relaxed);
    return res;
}

MemslapResult
runMemslap(mc::CacheIface &cache, const MemslapCfg &cfg)
{
    if (!cfg.clusterNodes.empty())
        return runMemslapCluster(cfg);
    if (cfg.serverPort != 0)
        return runMemslapNet(cfg);
    const std::uint32_t threads = cfg.concurrency == 0 ? 1
                                                       : cfg.concurrency;

    // ------------------------------------------------------------------
    // Warm phase: populate each thread's key window (unmeasured).
    // ------------------------------------------------------------------
    {
        std::vector<std::thread> warmers;
        for (std::uint32_t t = 0; t < threads; ++t) {
            warmers.emplace_back([&, t] {
                std::vector<char> key(cfg.keySize + 1);
                std::vector<char> val(cfg.valueSize);
                for (std::uint64_t i = 0; i < cfg.windowSize; ++i) {
                    formatKey(key.data(), cfg.keySize, t, i);
                    formatValue(val.data(), cfg.valueSize, t, i);
                    cache.store(t, key.data(), cfg.keySize, val.data(),
                                cfg.valueSize);
                }
            });
        }
        for (auto &w : warmers)
            w.join();
    }

    // ------------------------------------------------------------------
    // Measured phase.
    // ------------------------------------------------------------------
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> hits{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> misses{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> failures{0};

    WallTimer timer;
    std::vector<std::thread> workers;
    for (std::uint32_t t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            XorShift128 rng(cfg.seed * 1315423911u + t);
            ZipfSampler *zipf = nullptr;
            ZipfSampler zipf_storage(
                cfg.zipfTheta > 0 ? cfg.windowSize : 1,
                cfg.zipfTheta > 0 ? cfg.zipfTheta : 1.0);
            if (cfg.zipfTheta > 0)
                zipf = &zipf_storage;

            std::vector<char> key(cfg.keySize + 1);
            std::vector<char> val(cfg.valueSize);
            std::vector<char> out(cfg.valueSize + 64);
            std::uint64_t local_hits = 0;
            std::uint64_t local_misses = 0;
            std::uint64_t local_failures = 0;

            for (std::uint64_t i = 0; i < cfg.executeNumber; ++i) {
                const std::uint64_t idx =
                    zipf ? zipf->sample(rng)
                         : rng.nextBounded(cfg.windowSize);
                formatKey(key.data(), cfg.keySize, t, idx);
                const double roll = rng.nextDouble();
                if (cfg.binaryProtocol) {
                    // memslap --binary: frame the op, parse the reply.
                    const std::string k(key.data(), cfg.keySize);
                    std::string reply;
                    if (roll < cfg.setFraction) {
                        formatValue(val.data(), cfg.valueSize, t, idx);
                        reply = mc::binaryExecute(
                            cache, t,
                            mc::binSetRequest(
                                k, std::string(val.data(),
                                               cfg.valueSize)));
                        mc::BinResponse r;
                        if (mc::binParseResponse(reply, r) == 0 ||
                            r.status != mc::BinStatus::Ok)
                            ++local_failures;
                    } else {
                        reply = mc::binaryExecute(
                            cache, t, mc::binRequest(mc::BinOp::Get, k));
                        mc::BinResponse r;
                        if (mc::binParseResponse(reply, r) != 0 &&
                            r.status == mc::BinStatus::Ok)
                            ++local_hits;
                        else
                            ++local_misses;
                    }
                    continue;
                }
                if (roll < cfg.setFraction) {
                    formatValue(val.data(), cfg.valueSize, t, idx);
                    const auto st = cache.store(t, key.data(), cfg.keySize,
                                                val.data(),
                                                cfg.valueSize);
                    if (st != mc::OpStatus::Ok)
                        ++local_failures;
                } else if (roll < cfg.setFraction + cfg.arithFraction) {
                    std::uint64_t v = 0;
                    cache.arith(t, key.data(), cfg.keySize, 1, true, v);
                } else if (roll < cfg.setFraction + cfg.arithFraction +
                                      cfg.deleteFraction) {
                    cache.del(t, key.data(), cfg.keySize);
                } else {
                    const auto r = cache.get(t, key.data(), cfg.keySize,
                                             out.data(), out.size());
                    if (r.status == mc::OpStatus::Ok)
                        ++local_hits;
                    else
                        ++local_misses;
                }
            }
            hits.fetch_add(local_hits, std::memory_order_relaxed);
            misses.fetch_add(local_misses, std::memory_order_relaxed);
            failures.fetch_add(local_failures, std::memory_order_relaxed);
        });
    }
    for (auto &w : workers)
        w.join();

    MemslapResult res;
    res.seconds = timer.elapsedSeconds();
    res.ops = static_cast<std::uint64_t>(threads) * cfg.executeNumber;
    res.hits = hits.load(std::memory_order_relaxed);
    res.misses = misses.load(std::memory_order_relaxed);
    res.failures = failures.load(std::memory_order_relaxed);
    return res;
}

} // namespace tmemc::workload
