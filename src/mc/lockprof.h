/**
 * @file
 * Lock-contention profiling: the mutrace substitute for the paper's
 * Section 3.1 step of identifying which locks are worth replacing
 * ("cache_lock and stats_lock were the only locks that threads
 * frequently failed to acquire on their first attempt").
 *
 * Every named mutex in the lock-based branches counts acquisitions and
 * first-attempt failures; bench_lockprof prints the table.
 */

#ifndef TMEMC_MC_LOCKPROF_H
#define TMEMC_MC_LOCKPROF_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/compiler.h"

namespace tmemc::mc
{

/** A mutex that records contention statistics, mutrace-style. */
class ProfiledMutex
{
  public:
    explicit ProfiledMutex(const char *name = "unnamed") : name_(name) {}

    void
    lock()
    {
        if (mu_.try_lock()) {
            acquisitions_.fetch_add(1, std::memory_order_relaxed);
            return;
        }
        contended_.fetch_add(1, std::memory_order_relaxed);
        mu_.lock();
        acquisitions_.fetch_add(1, std::memory_order_relaxed);
    }

    bool
    try_lock()
    {
        if (mu_.try_lock()) {
            acquisitions_.fetch_add(1, std::memory_order_relaxed);
            return true;
        }
        contended_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }

    void unlock() { mu_.unlock(); }

    const char *name() const { return name_; }
    std::uint64_t acquisitions() const
    {
        return acquisitions_.load(std::memory_order_relaxed);
    }
    std::uint64_t contended() const
    {
        return contended_.load(std::memory_order_relaxed);
    }

    void
    resetCounters()
    {
        acquisitions_.store(0, std::memory_order_relaxed);
        contended_.store(0, std::memory_order_relaxed);
    }

  private:
    const char *name_;
    std::mutex mu_;
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> acquisitions_{0};
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> contended_{0};
};

/** One row of the contention report. */
struct LockProfileRow
{
    std::string name;
    std::uint64_t acquisitions;
    std::uint64_t contended;

    double
    contentionRate() const
    {
        const std::uint64_t total = acquisitions + contended;
        return total == 0 ? 0.0
                          : static_cast<double>(contended) /
                                static_cast<double>(total);
    }
};

} // namespace tmemc::mc

#endif // TMEMC_MC_LOCKPROF_H
