/**
 * @file
 * Text-protocol implementation.
 */

#include "mc/protocol.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string_view>
#include <vector>

#include "mc/ctx.h"
#include "obs/metrics.h"
#include "obs/tail.h"

namespace tmemc::mc
{

namespace
{

/** Split the command line (up to \r\n) into whitespace-separated
 *  tokens; returns the offset just past the line terminator. */
std::size_t
tokenizeLine(const std::string &req, std::vector<std::string> &tokens)
{
    std::size_t eol = req.find("\r\n");
    if (eol == std::string::npos)
        eol = req.size();
    std::size_t i = 0;
    while (i < eol) {
        while (i < eol &&
               std::isspace(static_cast<unsigned char>(req[i])))
            ++i;
        std::size_t j = i;
        while (j < eol &&
               !std::isspace(static_cast<unsigned char>(req[j])))
            ++j;
        if (j > i)
            tokens.emplace_back(req.substr(i, j - i));
        i = j;
    }
    return eol + 2 <= req.size() ? eol + 2 : req.size();
}

std::string
storeReply(OpStatus st)
{
    switch (st) {
      case OpStatus::Ok:
        return "STORED\r\n";
      case OpStatus::NotStored:
        return "NOT_STORED\r\n";
      case OpStatus::Exists:
        return "EXISTS\r\n";
      case OpStatus::Miss:
        return "NOT_FOUND\r\n";
      case OpStatus::OutOfMemory:
        return "SERVER_ERROR out of memory storing object\r\n";
      case OpStatus::BadValue:
        return "CLIENT_ERROR cannot increment or decrement "
               "non-numeric value\r\n";
    }
    return "SERVER_ERROR\r\n";
}

} // namespace

FrameResult
protocolTryFrame(const char *data, std::size_t len)
{
    FrameResult r;
    const char *eol = static_cast<const char *>(
        std::memchr(data, '\n', std::min(len, kMaxCommandLine + 1)));
    if (eol == nullptr) {
        if (len > kMaxCommandLine) {
            r.status = FrameStatus::Error;
            r.error = "CLIENT_ERROR line too long\r\n";
            return r;
        }
        return r;  // NeedMore.
    }
    const std::size_t line_len =
        static_cast<std::size_t>(eol - data) + 1;
    if (line_len > kMaxCommandLine) {
        r.status = FrameStatus::Error;
        r.error = "CLIENT_ERROR line too long\r\n";
        return r;
    }

    // Storage commands carry <bytes> of data after the line. Token 4
    // (or token 4 of 6 for cas) is the byte count in all of them:
    //   set|add|replace|cas|append|prepend <key> <flags> <exp> <bytes> ...
    const char *p = data;
    const char *line_end = data + line_len;
    auto next_token = [&](const char *&tok, std::size_t &tok_len) {
        while (p < line_end &&
               std::isspace(static_cast<unsigned char>(*p)))
            ++p;
        tok = p;
        while (p < line_end &&
               !std::isspace(static_cast<unsigned char>(*p)))
            ++p;
        tok_len = static_cast<std::size_t>(p - tok);
        return tok_len > 0;
    };
    const char *cmd;
    std::size_t cmd_len;
    if (!next_token(cmd, cmd_len)) {
        // Bare newline: a one-line (empty) request; execute() will
        // answer ERROR.
        r.status = FrameStatus::Ready;
        r.frameLen = line_len;
        return r;
    }
    const std::string_view c(cmd, cmd_len);
    const bool storage = c == "set" || c == "add" || c == "replace" ||
                         c == "cas" || c == "append" || c == "prepend";
    if (!storage) {
        r.status = FrameStatus::Ready;
        r.frameLen = line_len;
        return r;
    }

    const char *tok = nullptr;
    std::size_t tok_len = 0;
    for (int i = 0; i < 4; ++i) {
        if (!next_token(tok, tok_len)) {
            // Malformed storage line (missing <bytes>); frame it as
            // the line alone so execute() can reply ERROR.
            r.status = FrameStatus::Ready;
            r.frameLen = line_len;
            return r;
        }
    }
    char numbuf[32];
    const std::size_t n = std::min(tok_len, sizeof(numbuf) - 1);
    std::memcpy(numbuf, tok, n);
    numbuf[n] = '\0';
    char *end = nullptr;
    const unsigned long long bytes = std::strtoull(numbuf, &end, 10);
    if (end == numbuf || bytes > kMaxBodyBytes) {
        r.status = FrameStatus::Error;
        r.error = "SERVER_ERROR object too large for cache\r\n";
        return r;
    }
    const std::size_t want = line_len + bytes + 2;  // Data + CRLF.
    if (len < want)
        return r;  // NeedMore.
    r.status = FrameStatus::Ready;
    r.frameLen = want;
    return r;
}

std::string
protocolExecute(CacheIface &cache, std::uint32_t worker,
                const std::string &request)
{
    std::vector<std::string> tok;
    const std::size_t body_off = tokenizeLine(request, tok);
    if (tok.empty())
        return "ERROR\r\n";
    const std::string &cmd = tok[0];

    if (cmd == "get" || cmd == "gets") {
        if (tok.size() < 2)
            return "ERROR\r\n";
        // Multi-key get: one batched lookup so a sharded cache visits
        // each touched shard once, not once per key.
        const std::size_t nkeys = tok.size() - 1;
        std::vector<std::vector<char>> bufs(nkeys);
        std::vector<CacheIface::MultiGetReq> reqs(nkeys);
        for (std::size_t i = 0; i < nkeys; ++i) {
            bufs[i].resize(65536);
            reqs[i].key = tok[i + 1].data();
            reqs[i].nkey = tok[i + 1].size();
            reqs[i].out = bufs[i].data();
            reqs[i].outCap = bufs[i].size();
        }
        cache.getMulti(worker, reqs.data(), reqs.size());
        std::string reply;
        for (std::size_t i = 0; i < nkeys; ++i) {
            const auto &r = reqs[i].result;
            if (r.status != OpStatus::Ok)
                continue;
            char header[256];
            int n;
            if (cmd == "gets") {
                n = std::snprintf(
                    header, sizeof(header), "VALUE %s 0 %zu %llu\r\n",
                    tok[i + 1].c_str(), r.vlen,
                    static_cast<unsigned long long>(r.casId));
            } else {
                n = std::snprintf(header, sizeof(header),
                                  "VALUE %s 0 %zu\r\n", tok[i + 1].c_str(),
                                  r.vlen);
            }
            reply.append(header, static_cast<std::size_t>(n));
            reply.append(bufs[i].data(), std::min(r.vlen, bufs[i].size()));
            reply.append("\r\n");
        }
        reply.append("END\r\n");
        return reply;
    }

    if (cmd == "set" || cmd == "add" || cmd == "replace" || cmd == "cas") {
        const bool is_cas = cmd == "cas";
        const std::size_t need = is_cas ? 6 : 5;
        if (tok.size() < need)
            return "ERROR\r\n";
        const std::string &key = tok[1];
        const long exptime = std::strtol(tok[3].c_str(), nullptr, 10);
        const std::size_t bytes =
            std::strtoull(tok[4].c_str(), nullptr, 10);
        const std::uint64_t cas =
            is_cas ? std::strtoull(tok[5].c_str(), nullptr, 10) : 0;
        if (body_off + bytes > request.size())
            return "CLIENT_ERROR bad data chunk\r\n";
        StoreMode mode = StoreMode::Set;
        if (cmd == "add")
            mode = StoreMode::Add;
        else if (cmd == "replace")
            mode = StoreMode::Replace;
        else if (is_cas)
            mode = StoreMode::Cas;
        const auto st = cache.store(worker, key.data(), key.size(),
                                    request.data() + body_off, bytes,
                                    mode, cas);
        if (st == OpStatus::Ok && exptime > 0)
            cache.touch(worker, key.data(), key.size(), exptime);
        return storeReply(st);
    }

    if (cmd == "append" || cmd == "prepend") {
        if (tok.size() < 5)
            return "ERROR\r\n";
        const std::string &key = tok[1];
        const std::size_t bytes =
            std::strtoull(tok[4].c_str(), nullptr, 10);
        if (body_off + bytes > request.size())
            return "CLIENT_ERROR bad data chunk\r\n";
        const auto st =
            cache.concat(worker, key.data(), key.size(),
                         request.data() + body_off, bytes,
                         cmd == "append");
        return storeReply(st);
    }

    if (cmd == "delete") {
        if (tok.size() < 2)
            return "ERROR\r\n";
        const auto st = cache.del(worker, tok[1].data(), tok[1].size());
        return st == OpStatus::Ok ? "DELETED\r\n" : "NOT_FOUND\r\n";
    }

    if (cmd == "incr" || cmd == "decr") {
        if (tok.size() < 3)
            return "ERROR\r\n";
        const std::uint64_t delta =
            std::strtoull(tok[2].c_str(), nullptr, 10);
        std::uint64_t value = 0;
        const auto st = cache.arith(worker, tok[1].data(), tok[1].size(),
                                    delta, cmd == "incr", value);
        if (st != OpStatus::Ok)
            return "NOT_FOUND\r\n";
        char buf[32];
        const int n = std::snprintf(buf, sizeof(buf), "%llu\r\n",
                                    static_cast<unsigned long long>(value));
        return std::string(buf, static_cast<std::size_t>(n));
    }

    if (cmd == "touch") {
        if (tok.size() < 3)
            return "ERROR\r\n";
        const long exptime = std::strtol(tok[2].c_str(), nullptr, 10);
        const auto st =
            cache.touch(worker, tok[1].data(), tok[1].size(), exptime);
        return st == OpStatus::Ok ? "TOUCHED\r\n" : "NOT_FOUND\r\n";
    }

    if (cmd == "stats") {
        // memcached-style sub-stats: `stats latency` and `stats tm`
        // render the process-wide metrics snapshot (obs/metrics.h);
        // unknown arguments fall through to the plain cache stats, as
        // memcached replies to unknown subcommands with its default.
        if (tok.size() >= 2 && tok[1] == "latency") {
            return obs::MetricsRegistry::get().snapshot()
                       .asciiLatencyRows() +
                   "END\r\n";
        }
        if (tok.size() >= 2 && tok[1] == "tm") {
            return obs::MetricsRegistry::get().snapshot().asciiTmRows() +
                   "END\r\n";
        }
        if (tok.size() >= 2 && tok[1] == "tail") {
            // The tail tracer's merged reservoir: the K slowest
            // requests with their span chains (obs/tail.h). Arm with
            // tmemc_server --tail; disarmed it reports tail_armed 0.
            return obs::tail::tailAsciiRows() + "END\r\n";
        }
        if (tok.size() >= 2 && tok[1] == "cluster") {
            // Cluster-client counters (net/cluster.h): populated when
            // a net::Cluster shares this process, empty otherwise.
            return obs::MetricsRegistry::get().snapshot()
                       .asciiClusterRows() +
                   "END\r\n";
        }
        std::vector<char> buf(16384);
        const std::size_t n =
            cache.statsText(worker, buf.data(), buf.size());
        return std::string(buf.data(), n) + "END\r\n";
    }

    if (cmd == "flush_all") {
        cache.flushAll(worker);
        return "OK\r\n";
    }

    if (cmd == "version") {
        return std::string("VERSION ") + worklistVersion() + "\r\n";
    }

    return "ERROR\r\n";
}

bool
protocolExecutePinned(CacheIface &cache, std::uint32_t worker,
                      const std::string &request, Reply &out)
{
    // Commit to the pinned path only after the command is known to be
    // a retrieval AND the branch can pin: a false return must leave
    // @p out untouched so the caller's fallback builds a clean reply.
    std::vector<std::string> tok;
    tokenizeLine(request, tok);
    if (tok.size() < 2 || (tok[0] != "get" && tok[0] != "gets"))
        return false;
    if (!cache.pinnedGetSupported())
        return false;

    const bool with_cas = tok[0] == "gets";
    for (std::size_t i = 1; i < tok.size(); ++i) {
        CacheIface::PinnedValue v =
            cache.getPinned(worker, tok[i].data(), tok[i].size());
        if (v.status != OpStatus::Ok) {
            v.release();  // Defensive; misses carry no reference.
            continue;
        }
        char header[256];
        int n;
        if (with_cas) {
            n = std::snprintf(header, sizeof(header),
                              "VALUE %s 0 %zu %llu\r\n", tok[i].c_str(),
                              v.vlen,
                              static_cast<unsigned long long>(v.casId));
        } else {
            n = std::snprintf(header, sizeof(header),
                              "VALUE %s 0 %zu\r\n", tok[i].c_str(),
                              v.vlen);
        }
        out.append(header, static_cast<std::size_t>(n));
        out.appendPinned(v);  // Reply now owns the item reference.
        out.append("\r\n", 2);
    }
    out.append("END\r\n", 5);
    return true;
}

} // namespace tmemc::mc
