/**
 * @file
 * CacheCore<Policy>: the memcached-like cache, written once against
 * the section/context policy so that all branches of the paper's
 * Section 3 ladder compile from a single source.
 *
 * Lock/transaction domains (after memcached 1.4.15):
 *  - cache domain: hash-table structure and chains, LRU lists, CAS
 *    counter, expansion state;
 *  - item domain (bucket-striped): item *content* — value bytes and
 *    per-item metadata touched between find and release;
 *  - slabs domain: free lists, page accounting;
 *  - stats domain: global counters (plus per-thread stat sections).
 *
 * The canonical order is item < cache < slabs < stats, and exactly as
 * in the paper it is violated on the eviction and slab-rebalance
 * paths, which *trylock* an item lock while holding the cache lock.
 *
 * A get spans three sections: find+refcount-incr (cache), value copy
 * (item), refcount-decr/release (cache). The reference count is what
 * keeps the item alive between sections; this is the cross-domain
 * window the refcounts exist for.
 */

#ifndef TMEMC_MC_CACHE_H
#define TMEMC_MC_CACHE_H

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/padded.h"
#include "tm/domain.h"
#include "tm/runtime.h"
#include "mc/assoc.h"
#include "mc/branch.h"
#include "mc/hash.h"
#include "mc/item.h"
#include "mc/lru.h"
#include "mc/mcstats.h"
#include "mc/settings.h"
#include "mc/site.h"
#include "mc/slabs.h"
#include "mc/sync_lock.h"

namespace tmemc::mc
{

// ----------------------------------------------------------------------
// Critical-section sites: name + static unsafe-category analysis.
// (What the spec's compiler derives; see site.h.)
// ----------------------------------------------------------------------
namespace sites
{
// get-find touches current_time (a volatile), the key comparison, and
// the refcount only on the hit path: conditionally unsafe, so it is
// relaxed and *switches in flight* when a hit occurs (Table 1's
// In-Flight Switch column). item-release leads unconditionally with a
// refcount RMW and the global-stats section with a volatile probe:
// those *start serial* (the Start Serial column).
inline const SiteInfo getFind{"mc:get-find", kNoUnsafe,
                              kVolatile | kLib | kRmw | kIo};
// get-copy only reads shared state (the value bytes stream into the
// caller's private buffer), so it carries the read-only hint: branches
// where the memcpy is transaction-safe run it as an invisible reader.
inline const SiteInfo getCopy{"mc:get-copy", kLib, kIo, true};
inline const SiteInfo release{"mc:item-release", kRmw, kIo};
inline const SiteInfo alloc{"mc:slabs-alloc", kNoUnsafe, kIo};
inline const SiteInfo evict{"mc:evict", kNoUnsafe, kRmw | kLib | kIo};
inline const SiteInfo storeLink{"mc:store-link", kNoUnsafe,
                                kLib | kRmw | kIo};
inline const SiteInfo globalStats{"mc:stats-global", kVolatile, kNoUnsafe};
inline const SiteInfo expandTrigger{"mc:expand-trigger", kVolatile, kIo};
inline const SiteInfo del{"mc:delete", kNoUnsafe, kLib | kRmw | kIo};
inline const SiteInfo arithFind{"mc:arith-find", kNoUnsafe,
                                kLib | kRmw | kIo};
inline const SiteInfo arithApply{"mc:arith-apply", kLib, kIo};
inline const SiteInfo concatFind{"mc:concat-find", kNoUnsafe,
                                 kLib | kRmw | kIo};
inline const SiteInfo concatApply{"mc:concat-apply", kLib, kIo};
inline const SiteInfo touch{"mc:touch", kNoUnsafe,
                            kVolatile | kLib | kIo};
inline const SiteInfo threadStats{"mc:thread-stats", kNoUnsafe, kNoUnsafe};
inline const SiteInfo statsRender{"mc:stats-render", kVolatile | kLib,
                                  kNoUnsafe};
inline const SiteInfo slabsFreeNested{"mc:slabs-free", kNoUnsafe, kIo};
inline const SiteInfo expandStart{"mc:expand-start", kVolatile, kNoUnsafe};
inline const SiteInfo expandStep{"mc:expand-step", kVolatile, kLib | kIo};
inline const SiteInfo rebalPlan{"mc:rebal-plan", kVolatile, kIo};
inline const SiteInfo rebalRun{"mc:rebal-run", kNoUnsafe,
                               kRmw | kLib | kIo};
inline const SiteInfo rebalFinish{"mc:rebal-finish", kVolatile, kIo};
// Fused-get extension: find + copy + bump in one transaction, no
// refcounts — only meaningful once every unsafe category is gone.
inline const SiteInfo getFused{"mc:get-fused", kNoUnsafe,
                               kVolatile | kLib | kIo};
} // namespace sites

/** Store-operation semantics. */
enum class StoreMode : std::uint8_t
{
    Set,      //!< Unconditional store.
    Add,      //!< Store only if absent.
    Replace,  //!< Store only if present.
    Cas,      //!< Store only if the CAS id matches.
};

/** Result codes shared by the protocol layer and benchmarks. */
enum class OpStatus : std::uint8_t
{
    Ok,
    Miss,
    NotStored,
    Exists,    //!< CAS mismatch.
    OutOfMemory,
    BadValue,  //!< Non-numeric value for incr/decr.
};

/** The cache, parameterized by a synchronization policy. */
template <typename P>
class CacheCore
{
  public:
    static constexpr BranchCfg cfg = P::cfg;

    CacheCore(const Settings &settings, std::uint32_t worker_threads)
        : cfg_(settings),
          domain_(domainOrecBits(settings)),
          policy_(settings.itemLockCount, worker_threads),
          tstats_(worker_threads)
    {
        assocInit(assoc_, settings.hashPowerInit);
        slabsInit(slabs_, settings);
        hashThread_ = std::thread([this] { hashMaintLoop(); });
        slabThread_ = std::thread([this] { slabMaintLoop(); });
    }

    ~CacheCore()
    {
        // Halt the maintainers (Figure 2's halt protocol).
        tm::DomainScope ds(&domain_);
        PlainCtx<cfg> c;
        c.volatileStore(&mxCanRun_, std::uint64_t{0});
        policy_.maintWake(c, MaintDomain::Hash);
        policy_.maintWake(c, MaintDomain::Slab);
        hashThread_.join();
        slabThread_.join();
        releaseAllMemory();
    }

    CacheCore(const CacheCore &) = delete;
    CacheCore &operator=(const CacheCore &) = delete;

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    /**
     * GET: copy the value for @p key into @p out.
     * @return status and (on hit) the value length and CAS id.
     */
    struct GetResult
    {
        OpStatus status = OpStatus::Miss;
        std::size_t vlen = 0;
        std::uint64_t casId = 0;
    };

    GetResult
    get(std::uint32_t tid, const char *key, std::size_t nkey, char *out,
        std::size_t out_cap)
    {
        tm::DomainScope ds(&domain_);
        if constexpr (cfg.fusedGet)
            return getFusedImpl(tid, key, nkey, out, out_cap);
        tickAdvance();
        const std::uint32_t hv = hashKey(key, nkey);
        bumpThreadStat(tid, &ThreadStatsBlock::cmdGet);

        // Phase 1 (cache domain): find, take a reference, LRU bump.
        struct Found
        {
            Item *it = nullptr;
            std::uint32_t nbytes = 0;
            std::uint64_t cas = 0;
            bool expired = false;
        };
        const Found f = policy_.cacheSection(sites::getFind,
                                             [&](auto &c) -> Found {
            Found r;
            Item *it = assocFind(c, assoc_, key, nkey, hv);
            if (it == nullptr)
                return r;
            const std::uint64_t now = c.volatileLoad(&currentTime_);
            const std::int64_t expt = c.load(&it->exptime);
            if (expt != 0 && static_cast<std::uint64_t>(expt) < now) {
                // Expired: unlink in place.
                if (c.refRead(&it->refcount) == 0) {
                    r.nbytes = c.load(&it->nbytes);
                    unlinkAndFree(c, it, hv);
                    r.expired = true;
                    return r;
                }
            }
            c.refIncr(&it->refcount);
            const std::uint32_t cls = c.load(&it->clsid);
            if (now - c.load(&it->lastBump) >= cfg_.lruBumpInterval) {
                lruBump(c, lru_, it, cls);
                c.store(&it->lastBump, now);
            }
            c.logEvent(cfg_.verbose >= 2, "> GET");
            r.it = it;
            r.nbytes = c.load(&it->nbytes);
            r.cas = c.load(&it->casId);
            return r;
        });

        GetResult res;
        if (f.expired) {
            statsExpired(tid, f.nbytes);
            bumpThreadStat(tid, &ThreadStatsBlock::getMisses);
            return res;
        }
        if (f.it == nullptr) {
            bumpThreadStat(tid, &ThreadStatsBlock::getMisses);
            return res;
        }

        // Phase 2 (item domain): copy the value out. This is the IP/IT
        // fork: a privatized plain copy under the tm-boolean, or an
        // instrumented copy inside an item transaction.
        const std::size_t copy_len =
            f.nbytes < out_cap ? f.nbytes : out_cap;
        policy_.itemSection(sites::getCopy, hv, [&](auto &c) {
            const std::uint16_t nk = c.load(&f.it->nkey);
            const char *val = itemValuePtr(f.it, nk);
            c.memcpyOut(out, val, copy_len);
        });

        // Phase 3 (cache domain): drop the reference; reclaim if the
        // item was replaced or deleted while we held it.
        policy_.cacheSection(sites::release, [&](auto &c) {
            const std::uint64_t rc = c.refDecr(&f.it->refcount);
            c.assertThat(rc != ~std::uint64_t{0}, "refcount underflow");
            if (rc == 0 &&
                (c.load(&f.it->itFlags) & kItemLinked) == 0) {
                freeItem(c, f.it);
            }
        });

        bumpThreadStat(tid, &ThreadStatsBlock::getHits);
        bumpThreadStat(tid, &ThreadStatsBlock::bytesWritten, copy_len);
        res.status = OpStatus::Ok;
        res.vlen = f.nbytes;
        res.casId = f.cas;
        return res;
    }

    // ------------------------------------------------------------------
    // Zero-copy (pinned) GET
    // ------------------------------------------------------------------

    /**
     * True if this branch can hand out pinned value pointers. The
     * value bytes of a pinned item are read by the network layer
     * *outside* any critical section (scatter-gather into writev), so:
     *  - TxSection (IT) branches are excluded: item bytes are written
     *    transactionally there, and under the eager algorithm a
     *    speculative store is visible in place before commit — letting
     *    the kernel read the chunk would leak uncommitted bytes.
     *  - The fused-get branch is excluded: it has no reference counts,
     *    and the refcount is the only thing keeping a pinned chunk
     *    alive across the I/O window.
     * For the remaining branches the exposure is exactly memcached
     * 1.4.15's: in-place incr/decr/append may race the kernel's read
     * of the bytes (a torn value, never a fault — in-place mutation
     * stays within the chunk's capacity).
     */
    static constexpr bool
    pinnedGetSupported()
    {
        return cfg.items != ItemStrategy::TxSection && !cfg.fusedGet;
    }

    /** A hit whose value bytes stay in the slab, kept alive by the
     *  reference taken in phase 1. Pair with releasePinned(). */
    struct PinnedGet
    {
        OpStatus status = OpStatus::Miss;
        Item *it = nullptr;
        const char *data = nullptr;
        std::size_t vlen = 0;
        std::uint64_t casId = 0;
    };

    /**
     * GET without the copy: phase 1 of get() (find + refcount +
     * LRU bump), returning a pointer to the value bytes in the slab
     * chunk instead of copying them out. The caller owns one reference
     * and must call releasePinned() exactly once — that is get()'s
     * phase 3, deferred across the I/O window. Eviction, deletion and
     * flush_all already skip or defer referenced items, so the chunk
     * cannot be reused while pinned.
     */
    PinnedGet
    getPinned(std::uint32_t tid, const char *key, std::size_t nkey)
    {
        static_assert(pinnedGetSupported(),
                      "pinned gets are not safe for this branch");
        tm::DomainScope ds(&domain_);
        tickAdvance();
        const std::uint32_t hv = hashKey(key, nkey);
        bumpThreadStat(tid, &ThreadStatsBlock::cmdGet);

        struct Found
        {
            Item *it = nullptr;
            std::uint32_t nbytes = 0;
            std::uint64_t cas = 0;
            std::uint16_t nkey = 0;
            bool expired = false;
        };
        const Found f = policy_.cacheSection(sites::getFind,
                                             [&](auto &c) -> Found {
            Found r;
            Item *it = assocFind(c, assoc_, key, nkey, hv);
            if (it == nullptr)
                return r;
            const std::uint64_t now = c.volatileLoad(&currentTime_);
            const std::int64_t expt = c.load(&it->exptime);
            if (expt != 0 && static_cast<std::uint64_t>(expt) < now) {
                if (c.refRead(&it->refcount) == 0) {
                    r.nbytes = c.load(&it->nbytes);
                    unlinkAndFree(c, it, hv);
                    r.expired = true;
                    return r;
                }
            }
            c.refIncr(&it->refcount);
            const std::uint32_t cls = c.load(&it->clsid);
            if (now - c.load(&it->lastBump) >= cfg_.lruBumpInterval) {
                lruBump(c, lru_, it, cls);
                c.store(&it->lastBump, now);
            }
            c.logEvent(cfg_.verbose >= 2, "> GET(pinned)");
            r.it = it;
            r.nbytes = c.load(&it->nbytes);
            r.cas = c.load(&it->casId);
            r.nkey = c.load(&it->nkey);
            return r;
        });

        PinnedGet res;
        if (f.expired) {
            statsExpired(tid, f.nbytes);
            bumpThreadStat(tid, &ThreadStatsBlock::getMisses);
            return res;
        }
        if (f.it == nullptr) {
            bumpThreadStat(tid, &ThreadStatsBlock::getMisses);
            return res;
        }
        bumpThreadStat(tid, &ThreadStatsBlock::getHits);
        bumpThreadStat(tid, &ThreadStatsBlock::bytesWritten, f.nbytes);
        res.status = OpStatus::Ok;
        res.it = f.it;
        res.data = itemValuePtr(f.it, f.nkey);
        res.vlen = f.nbytes;
        res.casId = f.cas;
        return res;
    }

    /** Drop the reference taken by getPinned(): get()'s phase 3. */
    void
    releasePinned(std::uint32_t tid, Item *it)
    {
        (void)tid;
        tm::DomainScope ds(&domain_);
        policy_.cacheSection(sites::release, [&](auto &c) {
            const std::uint64_t rc = c.refDecr(&it->refcount);
            c.assertThat(rc != ~std::uint64_t{0}, "refcount underflow");
            if (rc == 0 && (c.load(&it->itFlags) & kItemLinked) == 0) {
                freeItem(c, it);
            }
        });
    }

    /** SET/ADD/REPLACE/CAS. */
    OpStatus
    store(std::uint32_t tid, const char *key, std::size_t nkey,
          const char *val, std::size_t nbytes,
          StoreMode mode = StoreMode::Set, std::uint64_t cas_expected = 0)
    {
        tm::DomainScope ds(&domain_);
        tickAdvance();
        const std::uint32_t hv = hashKey(key, nkey);
        bumpThreadStat(tid, &ThreadStatsBlock::cmdSet);

        const std::size_t need = Item::totalSize(nkey, nbytes);
        const std::uint32_t cls = slabClsid(slabs_, need);
        if (cls >= kMaxSlabClasses)
            return OpStatus::NotStored;  // Too large (SERVER_ERROR).

        Item *fresh = allocItem(tid, cls);
        if (fresh == nullptr) {
            statsOom(tid);
            return OpStatus::OutOfMemory;
        }

        // Fill the fresh (captured) item with plain stores, exactly as
        // GCC's captured-memory optimization allows.
        fresh->refcount = 0;
        fresh->lastBump = currentTimePlain();
        fresh->itFlags = 0;
        fresh->nbytes = static_cast<std::uint32_t>(nbytes);
        fresh->nkey = static_cast<std::uint16_t>(nkey);
        fresh->clsid = static_cast<std::uint8_t>(cls);
        fresh->exptime = 0;
        std::memcpy(fresh->key(), key, nkey);
        std::memcpy(fresh->value(), val, nbytes);

        // Link (cache domain).
        struct LinkResult
        {
            OpStatus status = OpStatus::Ok;
            bool replaced = false;
            std::uint64_t old_bytes = 0;
        };
        const LinkResult lr = policy_.cacheSection(
            sites::storeLink, [&](auto &c) -> LinkResult {
            LinkResult r;
            Item *old = assocFind(c, assoc_, key, nkey, hv);
            if (mode == StoreMode::Add && old != nullptr) {
                r.status = OpStatus::NotStored;
                return r;
            }
            if (mode == StoreMode::Replace && old == nullptr) {
                r.status = OpStatus::NotStored;
                return r;
            }
            if (mode == StoreMode::Cas) {
                if (old == nullptr) {
                    r.status = OpStatus::Miss;
                    return r;
                }
                if (c.load(&old->casId) != cas_expected) {
                    r.status = OpStatus::Exists;
                    return r;
                }
            }
            if (old != nullptr) {
                r.replaced = true;
                r.old_bytes = c.load(&old->nbytes);
                unlinkLocked(c, old, hv);
            }
            assocInsert(c, assoc_, fresh, hv);
            lruLink(c, lru_, fresh, cls);
            const std::uint64_t cas = c.load(&casCounter_) + 1;
            c.store(&casCounter_, cas);
            c.store(&fresh->casId, cas);
            c.store(&fresh->itFlags, std::uint32_t{kItemLinked});
            c.logEvent(cfg_.verbose >= 2, "> STORE");
            return r;
        });

        if (lr.status != OpStatus::Ok) {
            // The fresh item never got linked; return its chunk.
            policy_.slabsSection(sites::slabsFreeNested, [&](auto &c) {
                slabsFree(c, slabs_, fresh, cls);
            });
            statsStoreFailed(tid, mode, lr.status);
            return lr.status;
        }

        // Global statistics (stats domain): the unconditional volatile
        // probe here is what makes this transaction start serial until
        // the Max stage.
        policy_.statsSection(sites::globalStats, [&](auto &c) {
            (void)c.volatileLoad(&gstats_.memLimitNear);
            if (!lr.replaced) {
                c.store(&gstats_.currItems, c.load(&gstats_.currItems) + 1);
            }
            c.store(&gstats_.totalItems, c.load(&gstats_.totalItems) + 1);
            const std::uint64_t bytes = c.load(&gstats_.currBytes);
            c.store(&gstats_.currBytes, bytes + nbytes - lr.old_bytes);
        });

        maybeTriggerExpansion();
        bumpThreadStat(tid, &ThreadStatsBlock::bytesRead, nbytes);
        return OpStatus::Ok;
    }

    /** DELETE. */
    OpStatus
    del(std::uint32_t tid, const char *key, std::size_t nkey)
    {
        tm::DomainScope ds(&domain_);
        tickAdvance();
        const std::uint32_t hv = hashKey(key, nkey);
        struct DelResult
        {
            bool hit = false;
            std::uint64_t bytes = 0;
        };
        const DelResult r = policy_.cacheSection(
            sites::del, [&](auto &c) -> DelResult {
            DelResult d;
            Item *it = assocFind(c, assoc_, key, nkey, hv);
            if (it == nullptr)
                return d;
            d.hit = true;
            d.bytes = c.load(&it->nbytes);
            unlinkLocked(c, it, hv);
            c.logEvent(cfg_.verbose >= 2, "> DELETE");
            return d;
        });
        if (!r.hit) {
            bumpThreadStat(tid, &ThreadStatsBlock::deleteMisses);
            return OpStatus::Miss;
        }
        policy_.statsSection(sites::globalStats, [&](auto &c) {
            (void)c.volatileLoad(&gstats_.memLimitNear);
            c.store(&gstats_.currItems, c.load(&gstats_.currItems) - 1);
            c.store(&gstats_.currBytes,
                    c.load(&gstats_.currBytes) - r.bytes);
        });
        bumpThreadStat(tid, &ThreadStatsBlock::deleteHits);
        return OpStatus::Ok;
    }

    /** INCR/DECR: parse the stored decimal value, adjust, reformat. */
    struct ArithResult
    {
        OpStatus status = OpStatus::Miss;
        std::uint64_t value = 0;
    };

    ArithResult
    arith(std::uint32_t tid, const char *key, std::size_t nkey,
          std::uint64_t delta, bool incr)
    {
        tm::DomainScope ds(&domain_);
        tickAdvance();
        const std::uint32_t hv = hashKey(key, nkey);
        Item *held = policy_.cacheSection(
            sites::arithFind, [&](auto &c) -> Item * {
            Item *it = assocFind(c, assoc_, key, nkey, hv);
            if (it == nullptr)
                return nullptr;
            c.refIncr(&it->refcount);
            return it;
        });
        if (held == nullptr) {
            bumpThreadStat(tid, incr ? &ThreadStatsBlock::incrMisses
                                     : &ThreadStatsBlock::decrMisses);
            return {};
        }

        // Item domain: parse + rewrite the value in place. The parse
        // and reformat are the paper's strtoull/snprintf unsafe
        // library calls inside a critical section.
        ArithResult res;
        policy_.itemSection(sites::arithApply, hv, [&](auto &c) {
            const std::uint16_t nk = c.load(&held->nkey);
            char *val = itemValuePtr(held, nk);
            const std::uint32_t nb = c.load(&held->nbytes);
            const unsigned long long cur = c.strtoullS(val, nb);
            const std::uint64_t next =
                incr ? cur + delta : (cur < delta ? 0 : cur - delta);
            const std::uint32_t cap = capacityFor(held, nk);
            const int len = c.snprintfUllS(val, cap, next);
            c.assertThat(len > 0 && static_cast<std::uint32_t>(len) < cap,
                         "incr result exceeds chunk capacity");
            c.store(&held->nbytes, static_cast<std::uint32_t>(len));
            res.status = OpStatus::Ok;
            res.value = next;
        });

        // Release + CAS bump (cache domain).
        policy_.cacheSection(sites::release, [&](auto &c) {
            const std::uint64_t cas = c.load(&casCounter_) + 1;
            c.store(&casCounter_, cas);
            c.store(&held->casId, cas);
            const std::uint64_t rc = c.refDecr(&held->refcount);
            if (rc == 0 && (c.load(&held->itFlags) & kItemLinked) == 0)
                freeItem(c, held);
        });
        bumpThreadStat(tid, incr ? &ThreadStatsBlock::incrHits
                                 : &ThreadStatsBlock::decrHits);
        return res;
    }

    /**
     * APPEND/PREPEND: extend an existing item's value in place when
     * the chunk has room (prepend shifts the old bytes with the
     * transaction-safe memmove), or atomically replace via CAS when it
     * does not.
     */
    OpStatus
    concat(std::uint32_t tid, const char *key, std::size_t nkey,
           const char *extra, std::size_t nextra, bool append)
    {
        tm::DomainScope ds(&domain_);
        for (int attempt = 0; attempt < 8; ++attempt) {
            tickAdvance();
            const std::uint32_t hv = hashKey(key, nkey);
            bumpThreadStat(tid, &ThreadStatsBlock::cmdSet);

            Item *held = policy_.cacheSection(
                sites::concatFind, [&](auto &c) -> Item * {
                Item *it = assocFind(c, assoc_, key, nkey, hv);
                if (it == nullptr)
                    return nullptr;
                c.refIncr(&it->refcount);
                return it;
            });
            if (held == nullptr)
                return OpStatus::NotStored;  // memcached semantics.

            // Item domain: try the in-place path; otherwise capture
            // the old value and its CAS id for the replace path.
            struct ConcatResult
            {
                bool inPlace = false;
                std::uint64_t cas = 0;
                std::uint32_t oldLen = 0;
            };
            std::vector<char> old_value;
            ConcatResult cr;
            policy_.itemSection(sites::concatApply, hv, [&](auto &c) {
                const std::uint16_t nk = c.load(&held->nkey);
                char *val = itemValuePtr(held, nk);
                const std::uint32_t nb = c.load(&held->nbytes);
                cr.oldLen = nb;
                const std::uint32_t cap = capacityFor(held, nk);
                if (nb + nextra <= cap) {
                    if (append) {
                        c.memcpyIn(val + nb, extra, nextra);
                    } else {
                        // Shift the existing bytes right (overlapping
                        // ranges: the tm_memmove case), then write the
                        // prefix.
                        c.memmoveS(val + nextra, val, nb);
                        c.memcpyIn(val, extra, nextra);
                    }
                    c.store(&held->nbytes,
                            static_cast<std::uint32_t>(nb + nextra));
                    cr.inPlace = true;
                    return;
                }
                old_value.resize(nb);
                c.memcpyOut(old_value.data(), val, nb);
            });

            // Release + CAS bump (in-place concat is a mutation).
            policy_.cacheSection(sites::release, [&](auto &c) {
                if (cr.inPlace) {
                    const std::uint64_t cas = c.load(&casCounter_) + 1;
                    c.store(&casCounter_, cas);
                    c.store(&held->casId, cas);
                } else {
                    cr.cas = c.load(&held->casId);
                }
                const std::uint64_t rc = c.refDecr(&held->refcount);
                if (rc == 0 &&
                    (c.load(&held->itFlags) & kItemLinked) == 0)
                    freeItem(c, held);
            });
            if (cr.inPlace) {
                bumpThreadStat(tid, &ThreadStatsBlock::bytesRead, nextra);
                policy_.statsSection(sites::globalStats, [&](auto &c) {
                    (void)c.volatileLoad(&gstats_.memLimitNear);
                    c.store(&gstats_.currBytes,
                            c.load(&gstats_.currBytes) + nextra);
                });
                return OpStatus::Ok;
            }

            // Replace path: build the combined value privately and CAS
            // it in; a concurrent mutation invalidates the CAS and we
            // retry the whole operation.
            std::vector<char> combined(cr.oldLen + nextra);
            if (append) {
                std::memcpy(combined.data(), old_value.data(), cr.oldLen);
                std::memcpy(combined.data() + cr.oldLen, extra, nextra);
            } else {
                std::memcpy(combined.data(), extra, nextra);
                std::memcpy(combined.data() + nextra, old_value.data(),
                            cr.oldLen);
            }
            const auto st =
                store(tid, key, nkey, combined.data(), combined.size(),
                      StoreMode::Cas, cr.cas);
            if (st != OpStatus::Exists)
                return st;  // Ok, OutOfMemory, or Miss (deleted).
            // CAS lost a race: retry from the top.
        }
        return OpStatus::NotStored;
    }

    /** TOUCH: refresh the expiry clock of an item. */
    OpStatus
    touch(std::uint32_t tid, const char *key, std::size_t nkey,
          std::int64_t exptime)
    {
        tm::DomainScope ds(&domain_);
        tickAdvance();
        const std::uint32_t hv = hashKey(key, nkey);
        const bool hit = policy_.cacheSection(sites::touch, [&](auto &c) {
            Item *it = assocFind(c, assoc_, key, nkey, hv);
            if (it == nullptr)
                return false;
            c.store(&it->exptime, exptime);
            c.store(&it->lastBump, c.volatileLoad(&currentTime_));
            return true;
        });
        bumpThreadStat(tid, hit ? &ThreadStatsBlock::touchHits
                                : &ThreadStatsBlock::touchMisses);
        return hit ? OpStatus::Ok : OpStatus::Miss;
    }

    /**
     * Render a "STAT name value" text block into @p out — the stats
     * command. Exercises snprintf inside the stats critical section.
     */
    std::size_t
    statsText(std::uint32_t tid, char *out, std::size_t cap)
    {
        tm::DomainScope ds(&domain_);
        ThreadStatsBlock agg = aggregateThreadStats();
        std::size_t pos = 0;
        policy_.statsSection(sites::statsRender, [&](auto &c) {
            (void)c.volatileLoad(&gstats_.memLimitNear);
            auto emit = [&](const char *name, std::uint64_t v) {
                if (pos >= cap)
                    return;
                const int n = c.snprintfStatS(out + pos, cap - pos, name, v);
                if (n > 0)
                    pos += static_cast<std::size_t>(n);
            };
            emit("curr_items", c.load(&gstats_.currItems));
            emit("total_items", c.load(&gstats_.totalItems));
            emit("bytes", c.load(&gstats_.currBytes));
            emit("evictions", c.load(&gstats_.evictions));
            emit("hash_expansions", c.load(&gstats_.hashExpansions));
            emit("slab_pages_moved", c.load(&gstats_.slabPagesMoved));
            emit("cas_badval", c.load(&gstats_.casBadval));
            emit("cmd_get", agg.cmdGet);
            emit("cmd_set", agg.cmdSet);
            emit("get_hits", agg.getHits);
            emit("get_misses", agg.getMisses);
        });
        return pos;
    }

    /** FLUSH_ALL: evict every linked item. */
    void
    flushAll(std::uint32_t tid)
    {
        tm::DomainScope ds(&domain_);
        for (std::uint32_t cls = 0; cls < slabs_.numClasses; ++cls) {
            while (evictOne(tid, cls)) {
            }
        }
    }

    // ------------------------------------------------------------------
    // Introspection (tests / benchmarks)
    // ------------------------------------------------------------------

    GlobalStats
    globalStatsSnapshot()
    {
        tm::DomainScope ds(&domain_);
        return policy_.statsSection(sites::globalStats, [&](auto &c) {
            GlobalStats g;
            (void)c.volatileLoad(&gstats_.memLimitNear);
            g.currItems = c.load(&gstats_.currItems);
            g.totalItems = c.load(&gstats_.totalItems);
            g.currBytes = c.load(&gstats_.currBytes);
            g.evictions = c.load(&gstats_.evictions);
            g.expiredUnfetched = c.load(&gstats_.expiredUnfetched);
            g.hashExpansions = c.load(&gstats_.hashExpansions);
            g.slabPagesMoved = c.load(&gstats_.slabPagesMoved);
            g.casBadval = c.load(&gstats_.casBadval);
            return g;
        });
    }

    ThreadStatsBlock
    aggregateThreadStats()
    {
        tm::DomainScope ds(&domain_);
        ThreadStatsBlock agg;
        for (std::uint32_t t = 0; t < tstats_.size(); ++t) {
            policy_.threadStatsSection(sites::threadStats, t, [&](auto &c) {
                ThreadStatsBlock b;
                copyThreadBlock(c, tstats_[t].value, b);
                agg.add(b);
            });
        }
        return agg;
    }

    std::vector<LockProfileRow> lockProfile() const
    {
        return policy_.lockProfile();
    }

    std::uint64_t
    linkedItemCount()
    {
        tm::DomainScope ds(&domain_);
        return policy_.cacheSection(sites::touch, [&](auto &c) {
            return c.load(&assoc_.itemCount);
        });
    }

    std::uint32_t
    hashPowerNow()
    {
        tm::DomainScope ds(&domain_);
        return policy_.cacheSection(sites::touch, [&](auto &c) {
            return c.load(&assoc_.hashPower);
        });
    }

    bool
    expansionInFlight()
    {
        tm::DomainScope ds(&domain_);
        PlainCtx<cfg> c;
        return c.volatileLoad(&assoc_.expanding) != 0;
    }

    const Settings &settings() const { return cfg_; }

    /** Ask the rebalancer to move a page toward @p dst_cls (tests). */
    void
    requestRebalance(std::uint32_t src_cls, std::uint32_t dst_cls)
    {
        tm::DomainScope ds(&domain_);
        PlainCtx<cfg> c;
        c.store(&slabs_.rebalSrc, std::uint64_t{src_cls});
        c.store(&slabs_.rebalDst, std::uint64_t{dst_cls});
        c.volatileStore(&slabs_.rebalSignal, std::uint64_t{1});
        policy_.maintWake(c, MaintDomain::Slab);
    }

    /** Block until no expansion or rebalance is in flight. */
    void
    quiesceMaintenance()
    {
        tm::DomainScope ds(&domain_);
        PlainCtx<cfg> c;
        while (c.volatileLoad(&assoc_.expanding) != 0 ||
               c.volatileLoad(&slabs_.rebalSignal) != 0 ||
               c.volatileLoad(&hashWorkPending_) != 0)
            std::this_thread::yield();
    }

  private:
    /**
     * The fused get (extension branch): one transaction spans find,
     * expiry, LRU bump, and the value copy. The transaction's conflict
     * detection replaces the reference count entirely — a concurrent
     * replace/evict/delete of the item conflicts with this
     * transaction's reads and one of the two retries.
     */
    GetResult
    getFusedImpl(std::uint32_t tid, const char *key, std::size_t nkey,
                 char *out, std::size_t out_cap)
    {
        tickAdvance();
        const std::uint32_t hv = hashKey(key, nkey);
        bumpThreadStat(tid, &ThreadStatsBlock::cmdGet);
        GetResult res;
        struct Fused
        {
            bool hit = false;
            bool expired = false;
            std::size_t vlen = 0;
            std::uint64_t cas = 0;
            std::uint64_t bytes = 0;
        };
        const Fused f = policy_.cacheSection(
            sites::getFused, [&](auto &c) -> Fused {
            Fused r;
            Item *it = assocFind(c, assoc_, key, nkey, hv);
            if (it == nullptr)
                return r;
            const std::uint64_t now = c.volatileLoad(&currentTime_);
            const std::int64_t expt = c.load(&it->exptime);
            if (expt != 0 && static_cast<std::uint64_t>(expt) < now) {
                if (c.refRead(&it->refcount) == 0) {
                    r.bytes = c.load(&it->nbytes);
                    unlinkAndFree(c, it, hv);
                    r.expired = true;
                    return r;
                }
            }
            const std::uint32_t cls = c.load(&it->clsid);
            if (now - c.load(&it->lastBump) >= cfg_.lruBumpInterval) {
                lruBump(c, lru_, it, cls);
                c.store(&it->lastBump, now);
            }
            r.hit = true;
            r.vlen = c.load(&it->nbytes);
            r.cas = c.load(&it->casId);
            const std::uint16_t nk = c.load(&it->nkey);
            const std::size_t copy_len =
                r.vlen < out_cap ? r.vlen : out_cap;
            c.memcpyOut(out, itemValuePtr(it, nk), copy_len);
            return r;
        });
        if (f.expired) {
            statsExpired(tid, f.bytes);
            bumpThreadStat(tid, &ThreadStatsBlock::getMisses);
            return res;
        }
        if (!f.hit) {
            bumpThreadStat(tid, &ThreadStatsBlock::getMisses);
            return res;
        }
        bumpThreadStat(tid, &ThreadStatsBlock::getHits);
        bumpThreadStat(tid, &ThreadStatsBlock::bytesWritten,
                       f.vlen < out_cap ? f.vlen : out_cap);
        res.status = OpStatus::Ok;
        res.vlen = f.vlen;
        res.casId = f.cas;
        return res;
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    /** Item value pointer from an already-read nkey. */
    static char *
    itemValuePtr(Item *it, std::uint16_t nkey)
    {
        return it->key() + ((nkey + 7u) & ~7u);
    }

    /** Value capacity left in the item's chunk. */
    std::uint32_t
    capacityFor(const Item *it, std::uint16_t nkey) const
    {
        const std::uint32_t chunk = slabs_.classes[it->clsid].chunkSize;
        const std::uint32_t used = static_cast<std::uint32_t>(
            sizeof(Item) + ((nkey + 7u) & ~7u));
        return chunk > used ? chunk - used : 0;
    }

    template <typename Ctx>
    TM_CALLABLE void
    copyThreadBlock(Ctx &c, const ThreadStatsBlock &src,
                    ThreadStatsBlock &dst)
    {
        dst.cmdGet = c.load(&src.cmdGet);
        dst.cmdSet = c.load(&src.cmdSet);
        dst.getHits = c.load(&src.getHits);
        dst.getMisses = c.load(&src.getMisses);
        dst.deleteHits = c.load(&src.deleteHits);
        dst.deleteMisses = c.load(&src.deleteMisses);
        dst.incrHits = c.load(&src.incrHits);
        dst.incrMisses = c.load(&src.incrMisses);
        dst.decrHits = c.load(&src.decrHits);
        dst.decrMisses = c.load(&src.decrMisses);
        dst.casHits = c.load(&src.casHits);
        dst.casMisses = c.load(&src.casMisses);
        dst.touchHits = c.load(&src.touchHits);
        dst.touchMisses = c.load(&src.touchMisses);
        dst.bytesRead = c.load(&src.bytesRead);
        dst.bytesWritten = c.load(&src.bytesWritten);
    }

    template <typename Member>
    void
    bumpThreadStat(std::uint32_t tid, Member member, std::uint64_t by = 1)
    {
        ThreadStatsBlock &blk = tstats_[tid % tstats_.size()].value;
        policy_.threadStatsSection(sites::threadStats, tid, [&](auto &c) {
            c.store(&(blk.*member), c.load(&(blk.*member)) + by);
        });
    }

    /** Unlink from hash + LRU (cache section held). */
    template <typename Ctx>
    TM_CALLABLE void
    unlinkLocked(Ctx &c, Item *it, std::uint32_t hv)
    {
        const std::uint32_t cls = c.load(&it->clsid);
        assocUnlink(c, assoc_, it, hv);
        lruUnlink(c, lru_, it, cls);
        c.store(&it->itFlags, std::uint32_t{0});
        if (c.refRead(&it->refcount) == 0)
            freeItem(c, it);
        // Otherwise the releasing reader reclaims it (phase 3 of get).
    }

    /** Expire helper: full unlink + free (refcount known zero). */
    template <typename Ctx>
    TM_CALLABLE void
    unlinkAndFree(Ctx &c, Item *it, std::uint32_t hv)
    {
        const std::uint32_t cls = c.load(&it->clsid);
        assocUnlink(c, assoc_, it, hv);
        lruUnlink(c, lru_, it, cls);
        c.store(&it->itFlags, std::uint32_t{0});
        freeItem(c, it);
    }

    /** Return an unlinked, unreferenced item's chunk to its class. */
    template <typename Ctx>
    TM_CALLABLE void
    freeItem(Ctx &c, Item *it)
    {
        const std::uint32_t cls = c.load(&it->clsid);
        policy_.slabsSection(sites::slabsFreeNested, [&](auto &sc) {
            slabsFree(sc, slabs_, it, cls);
        });
    }

    /** Allocate a chunk, evicting if the budget is exhausted. */
    Item *
    allocItem(std::uint32_t tid, std::uint32_t cls)
    {
        for (int attempt = 0; attempt < 20; ++attempt) {
            Item *it = policy_.slabsSection(sites::alloc, [&](auto &c) {
                return slabsAlloc(c, slabs_, cls);
            });
            if (it != nullptr)
                return it;
            if (!evictOne(tid, cls)) {
                // Nothing evictable in this class: ask the rebalancer
                // to shift a page here, then retry.
                requestRebalanceFromRichest(cls);
                std::this_thread::yield();
            }
        }
        return nullptr;
    }

    /**
     * Evict the coldest unreferenced item of @p cls (tail walk with
     * bounded depth). Holds the cache lock and *trylocks* the victim's
     * item lock — the canonical lock-order violation.
     * @return true if an item was evicted.
     */
    bool
    evictOne(std::uint32_t tid, std::uint32_t cls)
    {
        struct Evicted
        {
            bool did = false;
            std::uint64_t bytes = 0;
        };
        const Evicted ev = policy_.cacheSection(
            sites::evict, [&](auto &c) -> Evicted {
            Evicted r;
            Item *cand = c.load(&lru_.tails[cls]);
            for (int depth = 0;
                 cand != nullptr && depth < cfg_.evictionSearchDepth;
                 ++depth) {
                Item *prev = c.load(&cand->prev);
                // Re-derive the victim's hash: marshal the key out and
                // hash the private copy.
                char keybuf[256];
                const std::uint16_t nk = c.load(&cand->nkey);
                c.memcpyOut(keybuf, cand->key(), nk);
                const std::uint32_t hv = hashKey(keybuf, nk);

                Item *victim = cand;
                const bool locked = policy_.itemTryWithin(
                    c, hv, [&](auto &ic) {
                    if (ic.refRead(&victim->refcount) != 0)
                        return;
                    if ((ic.load(&victim->itFlags) & kItemLinked) == 0)
                        return;
                    r.bytes = ic.load(&victim->nbytes);
                    assocUnlink(c, assoc_, victim, hv);
                    lruUnlink(c, lru_, victim, cls);
                    ic.store(&victim->itFlags, std::uint32_t{0});
                    r.did = true;
                });
                if (locked && r.did) {
                    freeItem(c, victim);
                    return r;
                }
                // Busy or referenced: "save for later" — move on to
                // the next candidate (paper Figure 1a, line 7).
                cand = prev;
            }
            return r;
        });
        if (!ev.did)
            return false;
        policy_.statsSection(sites::globalStats, [&](auto &c) {
            (void)c.volatileLoad(&gstats_.memLimitNear);
            c.store(&gstats_.evictions, c.load(&gstats_.evictions) + 1);
            c.store(&gstats_.currItems, c.load(&gstats_.currItems) - 1);
            c.store(&gstats_.currBytes,
                    c.load(&gstats_.currBytes) - ev.bytes);
        });
        return true;
    }

    // ------------------------------------------------------------------
    // Time
    // ------------------------------------------------------------------

    void
    tickAdvance()
    {
        const std::uint64_t t =
            opTicks_.fetch_add(1, std::memory_order_relaxed);
        if ((t & 63) == 0) {
            // The clock-tick update: memcached's current_time volatile,
            // written racily by the clock handler.
            PlainCtx<cfg> c;
            c.volatileStore(&currentTime_, t >> 6);
        }
    }

    std::uint64_t
    currentTimePlain()
    {
        PlainCtx<cfg> c;
        return c.volatileLoad(&currentTime_);
    }

    // ------------------------------------------------------------------
    // Maintenance: hash expansion
    // ------------------------------------------------------------------

    void
    maybeTriggerExpansion()
    {
        // Racy pre-check outside any section, like memcached's.
        PlainCtx<cfg> pc;
        const std::uint64_t items = pc.load(&assoc_.itemCount);
        const std::uint64_t buckets =
            1ull << pc.load(&assoc_.hashPower);
        if (items <= buckets + buckets / 2)
            return;
        if (pc.volatileLoad(&assoc_.expanding) != 0 ||
            pc.volatileLoad(&hashWorkPending_) != 0)
            return;
        policy_.cacheSection(sites::expandTrigger, [&](auto &c) {
            if (c.volatileLoad(&assoc_.expanding) != 0 ||
                c.volatileLoad(&hashWorkPending_) != 0)
                return;
            c.volatileStore(&hashWorkPending_, std::uint64_t{1});
            c.logEvent(cfg_.verbose >= 1, "hash expansion signalled");
            policy_.maintWake(c, MaintDomain::Hash);
        });
    }

    void
    hashMaintLoop()
    {
        tm::DomainScope ds(&domain_);
        for (;;) {
            policy_.maintWait(MaintDomain::Hash, [&](auto &c) {
                return c.volatileLoad(&hashWorkPending_) != 0 ||
                       c.volatileLoad(&mxCanRun_) == 0;
            });
            PlainCtx<cfg> pc;
            if (pc.volatileLoad(&mxCanRun_) == 0)
                return;

            const bool started = policy_.cacheSection(
                sites::expandStart, [&](auto &c) {
                if (c.volatileLoad(&assoc_.expanding) != 0)
                    return true;  // Resume an in-flight expansion.
                return assocStartExpand(c, assoc_);
            });
            if (!started) {
                // Table allocation failed: drop the request and keep
                // serving; the next trigger retries.
                pc.volatileStore(&hashWorkPending_, std::uint64_t{0});
                continue;
            }
            bool done = false;
            while (!done) {
                if (pc.volatileLoad(&mxCanRun_) == 0)
                    return;
                done = policy_.cacheSection(
                    sites::expandStep, [&](auto &c) {
                    // A batch of buckets per section, as memcached
                    // migrates hash_bulk_move buckets per lock hold.
                    for (int i = 0; i < 8; ++i) {
                        if (assocExpandBucket(c, assoc_))
                            return true;
                    }
                    return false;
                });
                std::this_thread::yield();
            }
            policy_.statsSection(sites::globalStats, [&](auto &c) {
                (void)c.volatileLoad(&gstats_.memLimitNear);
                c.store(&gstats_.hashExpansions,
                        c.load(&gstats_.hashExpansions) + 1);
            });
            pc.volatileStore(&hashWorkPending_, std::uint64_t{0});
        }
    }

    // ------------------------------------------------------------------
    // Maintenance: slab rebalance
    // ------------------------------------------------------------------

    void
    requestRebalanceFromRichest(std::uint32_t dst_cls)
    {
        PlainCtx<cfg> pc;
        if (pc.volatileLoad(&slabs_.rebalSignal) != 0)
            return;
        // Find the class with the most pages (racy scan is fine; the
        // rebalancer re-validates).
        std::uint32_t best = kMaxSlabClasses;
        std::uint64_t best_pages = 1;  // Need at least 2 to give one up.
        for (std::uint32_t i = 0; i < slabs_.numClasses; ++i) {
            if (i == dst_cls)
                continue;
            const std::uint64_t p = pc.load(&slabs_.classes[i].pageCount);
            if (p > best_pages) {
                best_pages = p;
                best = i;
            }
        }
        if (best == kMaxSlabClasses)
            return;
        pc.store(&slabs_.rebalSrc, std::uint64_t{best});
        pc.store(&slabs_.rebalDst, std::uint64_t{dst_cls});
        pc.volatileStore(&slabs_.rebalSignal, std::uint64_t{1});
        policy_.maintWake(pc, MaintDomain::Slab);
    }

    void
    slabMaintLoop()
    {
        tm::DomainScope ds(&domain_);
        for (;;) {
            policy_.maintWait(MaintDomain::Slab, [&](auto &c) {
                return c.volatileLoad(&slabs_.rebalSignal) != 0 ||
                       c.volatileLoad(&mxCanRun_) == 0;
            });
            PlainCtx<cfg> pc;
            if (pc.volatileLoad(&mxCanRun_) == 0)
                return;

            // Blocking acquire of the rebalance lock, rendered as
            // trylock + yield (paper Section 3.1).
            while (!policy_.rebalTryAcquire()) {
                if (pc.volatileLoad(&mxCanRun_) == 0)
                    return;
                std::this_thread::yield();
            }
            rebalanceOnePage();
            policy_.rebalRelease();
            pc.volatileStore(&slabs_.rebalSignal, std::uint64_t{0});
        }
    }

    /** Move one page from rebalSrc to rebalDst, evicting its items. */
    void
    rebalanceOnePage()
    {
        struct Plan
        {
            void *page = nullptr;
            std::uint32_t src = 0;
            std::uint32_t dst = 0;
        };
        const Plan plan = policy_.slabsSection(
            sites::rebalPlan, [&](auto &c) -> Plan {
            Plan p;
            const std::uint64_t src = c.load(&slabs_.rebalSrc);
            const std::uint64_t dst = c.load(&slabs_.rebalDst);
            if (src >= slabs_.numClasses || dst >= slabs_.numClasses ||
                src == dst)
                return p;
            SlabClass &k = slabs_.classes[src];
            const std::uint64_t pages = c.load(&k.pageCount);
            if (pages < 2)
                return p;  // Never strip a class bare.
            p.page = c.load(&k.pages[pages - 1]);
            p.src = static_cast<std::uint32_t>(src);
            p.dst = static_cast<std::uint32_t>(dst);
            return p;
        });
        if (plan.page == nullptr)
            return;

        // 1. Remove this page's free chunks from the source free list.
        policy_.slabsSection(sites::rebalRun, [&](auto &c) {
            SlabClass &k = slabs_.classes[plan.src];
            Item **slot = &k.freeList;
            std::uint64_t removed = 0;
            Item *cur = c.load(slot);
            while (cur != nullptr) {
                if (inPage(slabs_, plan.page, cur)) {
                    c.store(slot, c.load(&cur->hNext));
                    ++removed;
                } else {
                    slot = &cur->hNext;
                }
                cur = c.load(slot);
            }
            c.store(&k.freeCount, c.load(&k.freeCount) - removed);
        });

        // 2. Evict every linked item that lives in the page (cache
        // section + per-item trylock, the order violation again).
        const std::uint32_t chunk = slabs_.classes[plan.src].chunkSize;
        const std::uint32_t per_page = slabs_.classes[plan.src].perPage;
        std::uint64_t evicted_items = 0;
        std::uint64_t evicted_bytes = 0;
        for (std::uint32_t j = 0; j < per_page; ++j) {
            auto *it = reinterpret_cast<Item *>(
                static_cast<char *>(plan.page) + std::size_t{j} * chunk);
            for (int spin = 0;; ++spin) {
                const bool settled = policy_.cacheSection(
                    sites::rebalRun, [&](auto &c) {
                    if ((c.load(&it->itFlags) & kItemLinked) == 0)
                        return true;  // Free or already gone.
                    char keybuf[256];
                    const std::uint16_t nk = c.load(&it->nkey);
                    c.memcpyOut(keybuf, it->key(), nk);
                    const std::uint32_t hv = hashKey(keybuf, nk);
                    bool moved = false;
                    policy_.itemTryWithin(c, hv, [&](auto &ic) {
                        if (ic.refRead(&it->refcount) != 0)
                            return;
                        evicted_bytes += ic.load(&it->nbytes);
                        assocUnlink(c, assoc_, it, hv);
                        lruUnlink(c, lru_, it, c.load(&it->clsid));
                        ic.store(&it->itFlags, std::uint32_t{0});
                        ++evicted_items;
                        moved = true;
                    });
                    return moved;
                });
                if (settled)
                    break;
                std::this_thread::yield();
                if (spin > 10000)
                    break;  // Referenced forever? Give up this chunk.
            }
        }

        // 3. Reassign the page to the destination class.
        policy_.slabsSection(sites::rebalFinish, [&](auto &c) {
            SlabClass &k = slabs_.classes[plan.src];
            c.store(&k.pageCount, c.load(&k.pageCount) - 1);
            slabsCarvePage(c, slabs_, plan.dst, plan.page);
            c.logEvent(cfg_.verbose >= 1, "slab page moved");
        });
        policy_.statsSection(sites::globalStats, [&](auto &c) {
            (void)c.volatileLoad(&gstats_.memLimitNear);
            c.store(&gstats_.slabPagesMoved,
                    c.load(&gstats_.slabPagesMoved) + 1);
            c.store(&gstats_.evictions,
                    c.load(&gstats_.evictions) + evicted_items);
            c.store(&gstats_.currItems,
                    c.load(&gstats_.currItems) - evicted_items);
            c.store(&gstats_.currBytes,
                    c.load(&gstats_.currBytes) - evicted_bytes);
        });
    }

    // ------------------------------------------------------------------
    // Miscellaneous
    // ------------------------------------------------------------------

    void
    statsExpired(std::uint32_t tid, std::uint64_t bytes)
    {
        policy_.statsSection(sites::globalStats, [&](auto &c) {
            (void)c.volatileLoad(&gstats_.memLimitNear);
            c.store(&gstats_.expiredUnfetched,
                    c.load(&gstats_.expiredUnfetched) + 1);
            c.store(&gstats_.currItems, c.load(&gstats_.currItems) - 1);
            c.store(&gstats_.currBytes,
                    c.load(&gstats_.currBytes) - bytes);
        });
    }

    void
    statsOom(std::uint32_t tid)
    {
        policy_.statsSection(sites::globalStats, [&](auto &c) {
            c.volatileStore(&gstats_.memLimitNear, std::uint64_t{1});
        });
    }

    void
    statsStoreFailed(std::uint32_t tid, StoreMode mode, OpStatus st)
    {
        if (mode == StoreMode::Cas) {
            if (st == OpStatus::Exists) {
                policy_.statsSection(sites::globalStats, [&](auto &c) {
                    (void)c.volatileLoad(&gstats_.memLimitNear);
                    c.store(&gstats_.casBadval,
                            c.load(&gstats_.casBadval) + 1);
                });
                bumpThreadStat(tid, &ThreadStatsBlock::casMisses);
            }
        }
    }

    void
    releaseAllMemory()
    {
        for (std::uint32_t i = 0; i < slabs_.numClasses; ++i) {
            SlabClass &k = slabs_.classes[i];
            for (std::uint64_t p = 0; p < k.pageCount; ++p)
                std::free(k.pages[p]);
            std::free(k.pages);
        }
        std::free(assoc_.primary);
        std::free(assoc_.old);
    }

    /**
     * Size this cache's orec table so total orec memory stays roughly
     * constant as shard count grows: the configured table bits minus
     * log2(shardCount), floored at 10 bits.
     */
    static std::uint32_t
    domainOrecBits(const Settings &s)
    {
        std::uint32_t bits = tm::Runtime::get().cfg().orecTableBits;
        for (std::uint32_t n = s.shardCount; n > 1 && bits > 10; n >>= 1)
            --bits;
        return bits;
    }

    Settings cfg_;
    /** This cache's private TM synchronization domain: transactions on
     *  two CacheCore instances never conflict or serialize each other. */
    tm::TxDomain domain_;
    P policy_;
    AssocState assoc_;
    LruState lru_;
    SlabState slabs_;
    GlobalStats gstats_;
    std::vector<Padded<ThreadStatsBlock>> tstats_;
    std::uint64_t casCounter_ = 0;

    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> opTicks_{0};
    std::uint64_t currentTime_ = 1;  //!< Volatile category.

    std::uint64_t hashWorkPending_ = 0;  //!< Volatile category.
    std::uint64_t mxCanRun_ = 1;         //!< Volatile category.

    std::thread hashThread_;
    std::thread slabThread_;
};

} // namespace tmemc::mc

#endif // TMEMC_MC_CACHE_H
