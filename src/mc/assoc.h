/**
 * @file
 * Chained hash table with incremental expansion, after memcached's
 * assoc.c.
 *
 * Domain split (matches memcached 1.4.15):
 *  - bucket chains and item hNext fields are protected by the
 *    bucket-striped item locks;
 *  - the table pointers, hash power, and expansion cursor are cache
 *    domain, mutated only by the expansion maintenance path;
 *  - `expanding` is one of the paper's volatile flags: readers probe
 *    it racily (ctx.volatileLoad) to pick the right table while the
 *    maintenance thread migrates buckets.
 *
 * All functions take a memory context; the same source serves plain,
 * privatized, and transactional execution.
 */

#ifndef TMEMC_MC_ASSOC_H
#define TMEMC_MC_ASSOC_H

#include <cstring>

#include "mc/hash.h"
#include "mc/item.h"
#include "tm/strict.h"

namespace tmemc::mc
{

/** Hash-table state. */
struct AssocState
{
    Item **primary = nullptr;   //!< Current bucket array.
    Item **old = nullptr;       //!< Previous array during expansion.
    std::uint32_t hashPower = 0;
    std::uint64_t expanding = 0;     //!< Volatile-category flag.
    std::uint64_t expandBucket = 0;  //!< Next old-table bucket to move.
    std::uint64_t itemCount = 0;     //!< Linked items.

    std::uint64_t bucketCount() const { return 1ull << hashPower; }
    std::uint64_t mask() const { return bucketCount() - 1; }
};

/** Allocate and zero a bucket array (startup / expansion). */
inline Item **
assocNewTable(std::uint32_t power)
{
    const std::size_t n = std::size_t{1} << power;
    auto **table = static_cast<Item **>(std::calloc(n, sizeof(Item *)));
    return table;
}

/** Initialize at startup (single-threaded; no context needed). */
inline void
assocInit(AssocState &s, std::uint32_t power)
{
    s.primary = assocNewTable(power);
    s.hashPower = power;
}

/**
 * Pick the bucket slot for @p hv, honouring an in-flight expansion:
 * buckets below the cursor already moved to the primary table.
 * @return Pointer to the bucket head slot.
 */
template <typename Ctx>
TM_CALLABLE Item **
assocBucket(Ctx &c, AssocState &s, std::uint32_t hv)
{
    TMEMC_STRICT_SHARED_ENTRY(c, &s.primary, "assocBucket");
    // Expansion state is cache-domain structure, read under the same
    // section that guards the buckets (memcached reads `expanding`
    // under cache_lock; its true volatiles are the time and
    // maintenance flags).
    const std::uint64_t exp = c.load(&s.expanding);
    if (exp != 0) {
        const std::uint32_t power = c.load(&s.hashPower);
        const std::uint64_t oldidx = hv & ((1ull << (power - 1)) - 1);
        if (oldidx >= c.load(&s.expandBucket)) {
            Item **old_table = c.load(&s.old);
            return &old_table[oldidx];
        }
    }
    Item **primary = c.load(&s.primary);
    const std::uint32_t power = c.load(&s.hashPower);
    return &primary[hv & ((1ull << power) - 1)];
}

/**
 * Find the item with the given (private) key.
 * The chain walk compares keys with the context's memcmp — one of the
 * paper's unsafe standard-library calls until the Lib stage.
 */
template <typename Ctx>
TM_CALLABLE Item *
assocFind(Ctx &c, AssocState &s, const char *key, std::size_t nkey,
          std::uint32_t hv)
{
    TMEMC_STRICT_SHARED_ENTRY(c, &s.primary, "assocFind");
    Item **bucket = assocBucket(c, s, hv);
    Item *it = c.load(bucket);
    while (it != nullptr) {
        if (c.load(&it->nkey) == nkey &&
            c.memcmpS(it->key(), key, nkey) == 0)
            return it;
        it = c.load(&it->hNext);
    }
    return nullptr;
}

/** Insert a (fresh, filled) item at its bucket head. */
template <typename Ctx>
TM_CALLABLE void
assocInsert(Ctx &c, AssocState &s, Item *it, std::uint32_t hv)
{
    TMEMC_STRICT_SHARED_ENTRY(c, &s.primary, "assocInsert");
    Item **bucket = assocBucket(c, s, hv);
    c.store(&it->hNext, c.load(bucket));
    c.store(bucket, it);
    c.store(&s.itemCount, c.load(&s.itemCount) + 1);
}

/**
 * Unlink @p it from its chain.
 * @return true if the item was found and removed.
 */
template <typename Ctx>
TM_CALLABLE bool
assocUnlink(Ctx &c, AssocState &s, Item *it, std::uint32_t hv)
{
    TMEMC_STRICT_SHARED_ENTRY(c, &s.primary, "assocUnlink");
    Item **slot = assocBucket(c, s, hv);
    for (;;) {
        Item *cur = c.load(slot);
        if (cur == nullptr)
            return false;
        if (cur == it) {
            c.store(slot, c.load(&it->hNext));
            c.store(&it->hNext, static_cast<Item *>(nullptr));
            c.store(&s.itemCount, c.load(&s.itemCount) - 1);
            return true;
        }
        slot = &cur->hNext;
    }
}

/**
 * Begin an expansion: allocate a table twice the size and publish it
 * as primary; lookups consult the old table above the cursor until
 * the maintenance thread finishes migrating.
 * @return false when the new table cannot be allocated — the cache
 *         keeps serving from the current table (longer chains, not a
 *         crash) and a later trigger retries.
 */
template <typename Ctx>
TM_CALLABLE bool
assocStartExpand(Ctx &c, AssocState &s)
{
    TMEMC_STRICT_SHARED_ENTRY(c, &s.primary, "assocStartExpand");
    const std::uint32_t power = c.load(&s.hashPower);
    auto **fresh = static_cast<Item **>(
        c.allocRaw(sizeof(Item *) << (power + 1)));
    if (fresh == nullptr)
        return false;
    // Fresh memory is captured: plain initialization is safe.
    std::memset(fresh, 0, sizeof(Item *) << (power + 1));
    c.store(&s.old, c.load(&s.primary));
    c.store(&s.primary, fresh);
    c.store(&s.hashPower, power + 1);
    c.store(&s.expandBucket, std::uint64_t{0});
    c.volatileStore(&s.expanding, std::uint64_t{1});
    return true;
}

/**
 * Migrate one old-table bucket into the primary table. Caller holds
 * the bucket's item lock (via itemTryWithin) in addition to the cache
 * section.
 * @return true when the expansion completed.
 */
template <typename Ctx>
TM_CALLABLE bool
assocExpandBucket(Ctx &c, AssocState &s)
{
    TMEMC_STRICT_SHARED_ENTRY(c, &s.primary, "assocExpandBucket");
    const std::uint64_t idx = c.load(&s.expandBucket);
    const std::uint32_t power = c.load(&s.hashPower);
    const std::uint64_t old_count = 1ull << (power - 1);
    Item **old_table = c.load(&s.old);
    Item **primary = c.load(&s.primary);

    Item *it = c.load(&old_table[idx]);
    while (it != nullptr) {
        Item *next = c.load(&it->hNext);
        // Re-hash: the key lives in shared memory; copy it out first
        // (instrumented), then hash privately — the same
        // stack-marshaling shape as the paper's library calls.
        char keybuf[256];
        const std::uint16_t nk = c.load(&it->nkey);
        c.memcpyOut(keybuf, it->key(), nk);
        const std::uint32_t h = hashKey(keybuf, nk);
        Item **slot = &primary[h & ((1ull << power) - 1)];
        c.store(&it->hNext, c.load(slot));
        c.store(slot, it);
        it = next;
    }
    c.store(&old_table[idx], static_cast<Item *>(nullptr));
    c.store(&s.expandBucket, idx + 1);

    if (idx + 1 == old_count) {
        // Done: retire the old table.
        c.volatileStore(&s.expanding, std::uint64_t{0});
        c.freeRaw(old_table);
        c.store(&s.old, static_cast<Item **>(nullptr));
        return true;
    }
    return false;
}

} // namespace tmemc::mc

#endif // TMEMC_MC_ASSOC_H
