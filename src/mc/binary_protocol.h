/**
 * @file
 * memcached binary protocol, as exercised by the paper's workload
 * (memslap was run with --binary).
 *
 * Implements the frame layout of the memcached binary protocol
 * (magic/opcode/key-length/extras-length/status/body-length/opaque/
 * cas) for the opcodes the study needs: GET/GETK, SET/ADD/REPLACE,
 * DELETE, INCREMENT/DECREMENT, NOOP, VERSION, STAT, FLUSH.
 *
 * Multi-byte fields are network byte order; the 16-bit conversions go
 * through tmsafe::tm_htons's uninstrumented twin (htons was one of the
 * unsafe calls the paper had to handle, Section 3.4 — here it appears
 * on the private request buffer, before any transaction, exactly as in
 * memcached's conn parsing).
 */

#ifndef TMEMC_MC_BINARY_PROTOCOL_H
#define TMEMC_MC_BINARY_PROTOCOL_H

#include <cstdint>
#include <string>

#include "mc/cache_iface.h"
#include "mc/protocol.h"

namespace tmemc::mc
{

/** Binary-protocol magic bytes. */
enum class BinMagic : std::uint8_t
{
    Request = 0x80,
    Response = 0x81,
};

/** Opcodes (memcached protocol_binary.h values). */
enum class BinOp : std::uint8_t
{
    Get = 0x00,
    Set = 0x01,
    Add = 0x02,
    Replace = 0x03,
    Delete = 0x04,
    Increment = 0x05,
    Decrement = 0x06,
    Flush = 0x08,
    GetQ = 0x09,
    Noop = 0x0a,
    Version = 0x0b,
    GetK = 0x0c,
    GetKQ = 0x0d,
    Append = 0x0e,
    Prepend = 0x0f,
    Stat = 0x10,
    Touch = 0x1c,
};

/** Response status codes. */
enum class BinStatus : std::uint16_t
{
    Ok = 0x0000,
    KeyNotFound = 0x0001,
    KeyExists = 0x0002,
    ValueTooLarge = 0x0003,
    InvalidArguments = 0x0004,
    NotStored = 0x0005,
    NonNumeric = 0x0006,
    OutOfMemory = 0x0082,
    UnknownCommand = 0x0081,
};

/** Fixed 24-byte frame header. */
struct BinHeader
{
    std::uint8_t magic = 0;
    std::uint8_t opcode = 0;
    std::uint16_t keyLength = 0;    //!< Network order on the wire.
    std::uint8_t extrasLength = 0;
    std::uint8_t dataType = 0;
    std::uint16_t status = 0;       //!< vbucket id in requests.
    std::uint32_t bodyLength = 0;   //!< extras + key + value.
    std::uint32_t opaque = 0;
    std::uint64_t cas = 0;
};

constexpr std::size_t kBinHeaderSize = 24;

/** Serialize a header into 24 wire bytes (network byte order). */
void binEncodeHeader(const BinHeader &h, std::uint8_t *out);

/**
 * Parse 24 wire bytes into a header.
 * @return false if the magic byte is not a request/response magic.
 */
bool binDecodeHeader(const std::uint8_t *in, BinHeader &h);

/** Build a complete request frame. */
std::string binRequest(BinOp op, const std::string &key,
                       const std::string &value = "",
                       const std::string &extras = "",
                       std::uint64_t cas = 0, std::uint32_t opaque = 0);

/** Convenience: SET request with the flags/expiry extras. */
std::string binSetRequest(const std::string &key,
                          const std::string &value,
                          std::uint32_t flags = 0,
                          std::uint32_t expiry = 0,
                          BinOp op = BinOp::Set, std::uint64_t cas = 0);

/** Convenience: INCR/DECR request with delta/initial/expiry extras. */
std::string binArithRequest(BinOp op, const std::string &key,
                            std::uint64_t delta);

/** Decoded response, for clients and tests. */
struct BinResponse
{
    BinStatus status = BinStatus::Ok;
    BinOp opcode = BinOp::Noop;
    std::string key;
    std::string extras;
    std::string value;
    std::uint64_t cas = 0;
    std::uint32_t opaque = 0;
};

/**
 * Parse one response frame from @p wire.
 * @return Bytes consumed, or 0 if the buffer does not hold a frame.
 */
std::size_t binParseResponse(const std::string &wire, BinResponse &out);

/**
 * Execute one binary request against the cache and return the
 * response frame(s) (STAT produces several).
 *
 * Quiet gets (GetQ/GetKQ) answer only on a hit — a miss produces no
 * frame at all, which is how memcached clients implement pipelined
 * multi-get. When @p request holds a *run* of complete quiet-get
 * frames back to back (the connection layer concatenates consecutive
 * ones; see Conn::drainFrames), the whole run executes as one
 * CacheIface::getMulti call so a sharded cache visits each touched
 * shard once, and the reply contains the hit frames in request order.
 *
 * @return Empty string if the buffer does not contain a full frame
 *         (callers that only pass complete frames can treat an empty
 *         reply as "nothing to say", e.g. an all-miss quiet-get run).
 */
std::string binaryExecute(CacheIface &cache, std::uint32_t worker,
                          const std::string &request);

/** True when the bytes start with a binary GetQ/GetKQ request header
 *  (the frame need not be complete). */
bool binIsQuietGet(const char *data, std::size_t len);

/** Largest accepted binary request body (extras + key + value). */
constexpr std::size_t kBinMaxBodyBytes = 8 * 1024 * 1024 + 1024;

/** Longest key the binary protocol accepts (memcached KEY_MAX). */
constexpr std::size_t kBinMaxKeyBytes = 250;

/**
 * Scan @p len buffered bytes for one complete binary request frame.
 * Mirrors protocolTryFrame (protocol.h) for the binary wire format:
 * never consumes, never blocks. Error cases: wrong magic, a body
 * larger than kBinMaxBodyBytes, a key longer than kBinMaxKeyBytes, or
 * length fields that disagree — all unrecoverable on a byte stream
 * because resynchronization is impossible.
 */
FrameResult binaryTryFrame(const std::uint8_t *data, std::size_t len);

} // namespace tmemc::mc

#endif // TMEMC_MC_BINARY_PROTOCOL_H
