/**
 * @file
 * Segmented wire reply: the unit the zero-copy write path ships.
 *
 * A Reply is an ordered list of segments, each either *owned* bytes
 * (headers, END lines, full replies from the legacy formatting path)
 * or a *pinned* span — value bytes still living in the slab chunk,
 * kept alive by the item reference a getPinned() hit took. Owned
 * appends coalesce into the trailing owned segment, so a multi-key
 * get becomes [header|header|...] interleaved with pinned spans
 * instead of one small segment per append.
 *
 * Ownership rule: a pinned segment owns its item reference. Segments
 * release on destruction (and are move-only), so a Reply abandoned on
 * a dying connection cannot leak a refcount — the eviction and
 * rebalance paths both wait on those counts.
 */

#ifndef TMEMC_MC_REPLY_H
#define TMEMC_MC_REPLY_H

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "mc/cache_iface.h"

namespace tmemc::mc
{

/** Ordered owned/pinned segments forming one wire reply. */
class Reply
{
  public:
    /** One segment; move-only, releases its pin when destroyed. */
    struct Seg
    {
        std::string owned;
        CacheIface::PinnedValue pin;  //!< Engaged when pin.data != null.
        /** Bytes already written to the socket (used by net::Conn;
         *  always 0 while the segment still sits in a Reply). */
        std::size_t off = 0;

        Seg() = default;
        Seg(const Seg &) = delete;
        Seg &operator=(const Seg &) = delete;

        Seg(Seg &&o) noexcept
            : owned(std::move(o.owned)), pin(o.pin), off(o.off)
        {
            o.disarm();
        }

        Seg &
        operator=(Seg &&o) noexcept
        {
            if (this != &o) {
                pin.release();
                owned = std::move(o.owned);
                pin = o.pin;
                off = o.off;
                o.disarm();
            }
            return *this;
        }

        ~Seg() { pin.release(); }

        bool pinned() const { return pin.data != nullptr; }

        const char *
        data() const
        {
            return pinned() ? pin.data : owned.data();
        }

        std::size_t
        size() const
        {
            return pinned() ? pin.vlen : owned.size();
        }

      private:
        void
        disarm()
        {
            // The moved-from segment must neither release the pin nor
            // read as pinned.
            pin.owner = nullptr;
            pin.handle = nullptr;
            pin.data = nullptr;
            pin.vlen = 0;
            off = 0;
        }
    };

    Reply() = default;
    Reply(const Reply &) = delete;
    Reply &operator=(const Reply &) = delete;
    Reply(Reply &&) = default;
    Reply &operator=(Reply &&) = default;

    /** Append owned bytes, coalescing into the trailing owned seg. */
    void
    append(const char *data, std::size_t n)
    {
        if (n == 0)
            return;
        if (segs_.empty() || segs_.back().pinned())
            segs_.emplace_back();
        segs_.back().owned.append(data, n);
        bytes_ += n;
    }

    void append(const std::string &s) { append(s.data(), s.size()); }

    /** Append an owned string without copying when it starts a seg. */
    void
    append(std::string &&s)
    {
        if (s.empty())
            return;
        if (!segs_.empty() && !segs_.back().pinned()) {
            bytes_ += s.size();
            segs_.back().owned.append(s);
            return;
        }
        bytes_ += s.size();
        segs_.emplace_back();
        segs_.back().owned = std::move(s);
    }

    /**
     * Append a pinned value span. Takes over the item reference: the
     * caller must NOT call release() on its copy of @p v afterwards.
     * Misses (no handle) are fine — the segment is just empty.
     */
    void
    appendPinned(const CacheIface::PinnedValue &v)
    {
        segs_.emplace_back();
        segs_.back().pin = v;
        bytes_ += v.vlen;
    }

    /** Total payload bytes across every segment (owned + pinned). */
    std::size_t bytes() const { return bytes_; }

    bool empty() const { return segs_.empty(); }

    /** True if any segment pins slab memory. */
    bool
    hasPinned() const
    {
        for (const Seg &s : segs_)
            if (s.pinned())
                return true;
        return false;
    }

    /** Render to one owned string (tests; copies pinned spans). */
    std::string
    str() const
    {
        std::string out;
        out.reserve(bytes_);
        for (const Seg &s : segs_)
            out.append(s.data(), s.size());
        return out;
    }

    /** Hand the segments to the writer; the Reply becomes empty. */
    std::vector<Seg>
    takeSegments()
    {
        bytes_ = 0;
        return std::exchange(segs_, {});
    }

  private:
    std::vector<Seg> segs_;
    std::size_t bytes_ = 0;
};

} // namespace tmemc::mc

#endif // TMEMC_MC_REPLY_H
