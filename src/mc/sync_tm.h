/**
 * @file
 * Transactional synchronization policy: every TM branch (IP/IT x
 * Callable/Max/Lib/onCommit).
 *
 * Critical sections become transactions whose static attributes
 * (atomic vs relaxed, start-serial) are derived from the site's
 * unsafe-operation masks and the branch stage — the static analysis
 * the Draft C++ TM Specification's compiler performs.
 *
 * Item locks follow the branch's ItemStrategy:
 *  - TmBool (IP): a transactional boolean per lock stripe, acquired by
 *    a mini-transaction; the guarded data is then accessed without
 *    instrumentation (explicit privatization, Figure 1a).
 *  - TxSection (IT): the critical section itself is a transaction and
 *    the data is only ever touched transactionally (Figure 1b); the
 *    trylock-while-holding-cache-lock corner cases disappear.
 *
 * The slab-rebalance lock is a transactional boolean in all TM
 * branches ("transaction-safe locks were required", Section 3.1).
 */

#ifndef TMEMC_MC_SYNC_TM_H
#define TMEMC_MC_SYNC_TM_H

#include <map>
#include <shared_mutex>
#include <vector>

#include "common/backoff.h"
#include "common/padded.h"
#include "common/sem.h"
#include "mc/ctx.h"
#include "mc/lockprof.h"
#include "mc/site.h"
#include "mc/sync_lock.h"

namespace tmemc::mc
{

/**
 * Per-policy cache of TxnAttr instances, one per critical-section
 * site. Node-based map keeps attribute addresses stable (the TM
 * runtime keys its per-site profile on them).
 */
template <BranchCfg C>
class SiteAttrRegistry
{
  public:
    const tm::TxnAttr &
    get(const SiteInfo &site)
    {
        {
            std::shared_lock<std::shared_mutex> rd(mu_);
            auto it = attrs_.find(&site);
            if (it != attrs_.end())
                return it->second;
        }
        std::unique_lock<std::shared_mutex> wr(mu_);
        auto [it, inserted] = attrs_.try_emplace(&site);
        if (inserted) {
            const bool always = anyUnsafe(C, site.alwaysUnsafe);
            const bool maybe = anyUnsafe(C, site.maybeUnsafe);
            it->second.name = site.name;
            it->second.kind = (always || maybe) ? tm::TxnKind::Relaxed
                                                : tm::TxnKind::Atomic;
            it->second.startsSerial = always;
            // A section every path of which is read-only is eligible
            // for the invisible-reader fast path — unless it must
            // start serial, in which case it never runs speculatively.
            it->second.readOnlyHint = site.readOnly && !always;
        }
        return it->second;
    }

  private:
    std::shared_mutex mu_;
    std::map<const SiteInfo *, tm::TxnAttr> attrs_;
};

/** Transactional policy for branch configuration C. */
template <BranchCfg C>
class TmPolicy
{
  public:
    static constexpr BranchCfg cfg = C;
    static_assert(C.useTm, "TmPolicy requires a TM branch configuration");
    static_assert(C.semaphores,
                  "TM branches require the semaphore refactor first "
                  "(condition variables cannot pair with transactions)");

    explicit TmPolicy(std::uint32_t item_locks, std::uint32_t threads)
        : itemLockMask_(item_locks - 1), itemLocks_(item_locks)
    {
    }

    // ------------------------------------------------------------------
    // Lock-domain sections: all plain transactions now
    // ------------------------------------------------------------------

    template <typename F>
    auto
    cacheSection(const SiteInfo &site, F &&f)
    {
        return tm::run(attrs().get(site), [&](tm::TxDesc &tx) {
            TmCtx<C> c{tx};
            return f(c);
        });
    }

    template <typename F>
    auto
    slabsSection(const SiteInfo &site, F &&f)
    {
        return cacheSection(site, std::forward<F>(f));
    }

    template <typename F>
    auto
    statsSection(const SiteInfo &site, F &&f)
    {
        return cacheSection(site, std::forward<F>(f));
    }

    template <typename F>
    auto
    threadStatsSection(const SiteInfo &site, std::uint32_t, F &&f)
    {
        // Per-thread locks are uncontended, but a mutex op is unsafe
        // inside a transaction, so these too became transactions
        // (Section 3.1: "we were forced to replace uncontended
        // per-thread locks with transactions").
        return cacheSection(site, std::forward<F>(f));
    }

    // ------------------------------------------------------------------
    // Item critical sections
    // ------------------------------------------------------------------

    template <typename F>
    auto
    itemSection(const SiteInfo &site, std::uint32_t hv, F &&f)
    {
        if constexpr (C.items == ItemStrategy::TxSection) {
            // IT: the critical section is the transaction.
            return tm::run(attrs().get(site), [&](tm::TxDesc &tx) {
                TmCtx<C> c{tx};
                return f(c);
            });
        } else {
            // IP: acquire the transactional boolean, run the body
            // uninstrumented (the data is privatized), release.
            std::uint64_t *lk = &itemLocks_[hv & itemLockMask_].value;
            for (int spins = 0; !tryLockBool(lk); ++spins) {
                // Spin-trylock as in memcached, with a yield once the
                // holder is likely descheduled (paper Section 3.1:
                // failed blocking acquires fall back to pthread_yield).
                if (spins < 16)
                    cpuRelax();
                else
                    std::this_thread::yield();
            }
            struct Release
            {
                TmPolicy &p;
                std::uint64_t *lk;
                ~Release() { p.unlockBool(lk); }
            } guard{*this, lk};
            PlainCtx<C> c;
            return f(c);
        }
    }

    /**
     * Trylock from inside another transaction (the lock-order
     * violation sites). In IT the inner critical section simply joins
     * the enclosing transaction — conflicts replace the trylock, and
     * the save-for-later path is dead code (Figure 1b). In IP the
     * boolean is probed transactionally (Figure 1a): if held, the
     * caller's save-for-later path runs.
     */
    template <typename Ctx, typename FOk>
    TM_CALLABLE bool
    itemTryWithin(Ctx &outer, std::uint32_t hv, FOk &&f_ok)
    {
        if constexpr (C.items == ItemStrategy::TxSection) {
            f_ok(outer);
            return true;
        } else {
            std::uint64_t *lk = &itemLocks_[hv & itemLockMask_].value;
            if (outer.load(lk) != 0)
                return false;
            outer.store(lk, std::uint64_t{1});
            f_ok(outer);
            outer.store(lk, std::uint64_t{0});
            return true;
        }
    }

    // ------------------------------------------------------------------
    // Slab-rebalance "lock": transactional boolean in every TM branch
    // ------------------------------------------------------------------

    bool
    rebalTryAcquire()
    {
        return tryLockBool(&rebalFlag_.value);
    }

    void rebalRelease() { unlockBool(&rebalFlag_.value); }

    template <typename Ctx>
    bool
    rebalHeld(Ctx &c)
    {
        return c.load(&rebalFlag_.value) != 0;
    }

    // ------------------------------------------------------------------
    // Maintenance wakeup: semaphores only (Section 3.2)
    // ------------------------------------------------------------------

    template <typename Ctx>
    void
    maintWake(Ctx &c, MaintDomain dom)
    {
        c.semPost(sem(dom));
    }

    template <typename Pred>
    void
    maintWait(MaintDomain dom, Pred &&pred)
    {
        // The maintainer probes its flags outside any critical section
        // (Figure 2); from the Max stage on, PlainCtx renders each
        // probe as a transaction expression.
        PlainCtx<C> c;
        while (!pred(c))
            sem(dom).wait();
    }

    /** TM branches have no pthread locks left to profile. */
    std::vector<LockProfileRow> lockProfile() const { return {}; }

  private:
    static const tm::TxnAttr &
    boolLockAttr()
    {
        // The mini-transactions that implement tm-boolean locks touch
        // nothing unsafe in any stage.
        static const SiteInfo site{"mc:item-boollock", kNoUnsafe,
                                   kNoUnsafe};
        static SiteAttrRegistry<C> reg;
        return reg.get(site);
    }

    bool
    tryLockBool(std::uint64_t *lk)
    {
        return tm::run(boolLockAttr(), [&](tm::TxDesc &tx) {
            if (tm::txLoad(tx, lk) != 0)
                return false;
            tm::txStore(tx, lk, std::uint64_t{1});
            return true;
        });
    }

    void
    unlockBool(std::uint64_t *lk)
    {
        tm::run(boolLockAttr(), [&](tm::TxDesc &tx) {
            tm::txStore(tx, lk, std::uint64_t{0});
        });
    }

    Semaphore &
    sem(MaintDomain dom)
    {
        return dom == MaintDomain::Hash ? hashSem_ : slabSem_;
    }

    /**
     * Site attributes for this branch configuration. One static
     * registry per TmPolicy<C> type — TxnAttr instances must have
     * static storage duration because the TM runtime keys per-site
     * statistics on their addresses, and those statistics outlive any
     * particular cache instance.
     */
    static SiteAttrRegistry<C> &
    attrs()
    {
        static SiteAttrRegistry<C> registry;
        return registry;
    }

    std::uint32_t itemLockMask_;
    std::vector<Padded<std::uint64_t>> itemLocks_;
    Padded<std::uint64_t> rebalFlag_;
    Semaphore hashSem_;
    Semaphore slabSem_;
};

} // namespace tmemc::mc

#endif // TMEMC_MC_SYNC_TM_H
