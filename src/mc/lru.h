/**
 * @file
 * Per-slab-class LRU lists, after memcached's items.c heads/tails
 * arrays. Cache-lock domain: every link/unlink/bump happens inside a
 * cache section.
 */

#ifndef TMEMC_MC_LRU_H
#define TMEMC_MC_LRU_H

#include "mc/item.h"
#include "tm/strict.h"

namespace tmemc::mc
{

/** Maximum number of slab classes (memcached: MAX_NUMBER_OF_SLAB_CLASSES). */
constexpr std::uint32_t kMaxSlabClasses = 48;

/** LRU state: one doubly linked list per slab class. */
struct LruState
{
    Item *heads[kMaxSlabClasses] = {};
    Item *tails[kMaxSlabClasses] = {};
    std::uint64_t sizes[kMaxSlabClasses] = {};
};

/** Insert @p it at the head (most recently used) of its class list. */
template <typename Ctx>
TM_CALLABLE void
lruLink(Ctx &c, LruState &s, Item *it, std::uint32_t cls)
{
    TMEMC_STRICT_SHARED_ENTRY(c, &s.heads[cls], "lruLink");
    Item *head = c.load(&s.heads[cls]);
    c.store(&it->prev, static_cast<Item *>(nullptr));
    c.store(&it->next, head);
    if (head != nullptr)
        c.store(&head->prev, it);
    c.store(&s.heads[cls], it);
    if (c.load(&s.tails[cls]) == nullptr)
        c.store(&s.tails[cls], it);
    c.store(&s.sizes[cls], c.load(&s.sizes[cls]) + 1);
}

/** Remove @p it from its class list. */
template <typename Ctx>
TM_CALLABLE void
lruUnlink(Ctx &c, LruState &s, Item *it, std::uint32_t cls)
{
    TMEMC_STRICT_SHARED_ENTRY(c, &s.heads[cls], "lruUnlink");
    Item *prev = c.load(&it->prev);
    Item *next = c.load(&it->next);
    if (prev != nullptr)
        c.store(&prev->next, next);
    else
        c.store(&s.heads[cls], next);
    if (next != nullptr)
        c.store(&next->prev, prev);
    else
        c.store(&s.tails[cls], prev);
    c.store(&it->prev, static_cast<Item *>(nullptr));
    c.store(&it->next, static_cast<Item *>(nullptr));
    c.store(&s.sizes[cls], c.load(&s.sizes[cls]) - 1);
}

/** Move @p it to the head of its list (item_update). */
template <typename Ctx>
TM_CALLABLE void
lruBump(Ctx &c, LruState &s, Item *it, std::uint32_t cls)
{
    TMEMC_STRICT_SHARED_ENTRY(c, &s.heads[cls], "lruBump");
    if (c.load(&s.heads[cls]) == it)
        return;
    lruUnlink(c, s, it, cls);
    lruLink(c, s, it, cls);
}

} // namespace tmemc::mc

#endif // TMEMC_MC_LRU_H
