/**
 * @file
 * Slab allocator, after memcached's slabs.c: geometrically sized
 * chunk classes carved out of fixed-size pages, per-class free lists,
 * and the bookkeeping the slab-rebalance maintenance thread uses to
 * move pages between classes.
 *
 * slabs-lock domain, except the class geometry (chunk sizes), which
 * is immutable after startup and read without instrumentation.
 */

#ifndef TMEMC_MC_SLABS_H
#define TMEMC_MC_SLABS_H

#include <cstdlib>
#include <cstring>

#include "common/fault.h"
#include "common/logging.h"
#include "mc/item.h"
#include "mc/lru.h"
#include "mc/settings.h"
#include "tm/strict.h"

namespace tmemc::mc
{

/** One slab class. */
struct SlabClass
{
    // Immutable geometry (startup only).
    std::uint32_t chunkSize = 0;
    std::uint32_t perPage = 0;

    // slabs-lock domain.
    Item *freeList = nullptr;  //!< Chained through hNext.
    std::uint64_t freeCount = 0;
    std::uint64_t usedChunks = 0;

    /** Pages owned by this class (for the rebalancer). */
    void **pages = nullptr;
    std::uint64_t pageCount = 0;
    std::uint64_t pageCap = 0;
};

/** Allocator state. */
struct SlabState
{
    SlabClass classes[kMaxSlabClasses];
    std::uint32_t numClasses = 0;  //!< Immutable after init.
    std::size_t pageSize = 0;      //!< Immutable after init.

    std::uint64_t memAllocated = 0;  //!< Bytes handed to pages.
    std::uint64_t memLimit = 0;      //!< Budget (settings.maxBytes).

    /** Volatile-category flag: a class is starved; wake the
     *  rebalancer. One of the paper's renamed volatiles. */
    std::uint64_t rebalSignal = 0;
    /** Rebalance bookkeeping (guarded by the rebalance lock). */
    std::uint64_t rebalSrc = 0;
    std::uint64_t rebalDst = 0;
};

/** Build the class geometry at startup (single-threaded). */
inline void
slabsInit(SlabState &s, const Settings &cfg)
{
    s.pageSize = cfg.slabPageSize;
    s.memLimit = cfg.maxBytes;
    std::size_t size = cfg.slabChunkMin;
    std::uint32_t i = 0;
    for (; i < kMaxSlabClasses - 1 && size < cfg.itemSizeMax; ++i) {
        size = (size + 7) & ~std::size_t{7};
        s.classes[i].chunkSize = static_cast<std::uint32_t>(size);
        s.classes[i].perPage =
            static_cast<std::uint32_t>(cfg.slabPageSize / size);
        if (s.classes[i].perPage == 0)
            fatal("slab page size %zu too small for chunk %zu",
                  cfg.slabPageSize, size);
        size = static_cast<std::size_t>(
            static_cast<double>(size) * cfg.slabGrowthFactor);
    }
    s.classes[i].chunkSize = static_cast<std::uint32_t>(cfg.itemSizeMax);
    s.classes[i].perPage =
        static_cast<std::uint32_t>(cfg.slabPageSize / cfg.itemSizeMax);
    s.numClasses = i + 1;

    // Page-ownership arrays for the rebalancer: any class could in
    // principle own every page.
    const std::uint64_t max_pages = cfg.maxBytes / cfg.slabPageSize + 1;
    for (std::uint32_t j = 0; j < s.numClasses; ++j) {
        s.classes[j].pageCap = max_pages;
        s.classes[j].pages = static_cast<void **>(
            std::calloc(max_pages, sizeof(void *)));
    }
}

/** Smallest class whose chunks fit @p bytes; kMaxSlabClasses if none. */
inline std::uint32_t
slabClsid(const SlabState &s, std::size_t bytes)
{
    for (std::uint32_t i = 0; i < s.numClasses; ++i) {
        if (s.classes[i].chunkSize >= bytes)
            return i;
    }
    return kMaxSlabClasses;
}

/**
 * Carve a fresh page into chunks for class @p cls and thread them
 * onto its free list. Caller is inside a slabs section and has
 * checked the memory budget.
 */
template <typename Ctx>
TM_CALLABLE void
slabsCarvePage(Ctx &c, SlabState &s, std::uint32_t cls, void *page)
{
    TMEMC_STRICT_SHARED_ENTRY(c, &s.classes[cls], "slabsCarvePage");
    SlabClass &k = s.classes[cls];
    const std::uint32_t chunk = k.chunkSize;  // Immutable.
    const std::uint32_t n = k.perPage;

    // Fresh page: build the chain with plain stores (captured memory),
    // then publish it onto the shared free list with instrumented ones.
    auto *base = static_cast<char *>(page);
    for (std::uint32_t j = 0; j + 1 < n; ++j) {
        auto *it = reinterpret_cast<Item *>(base + std::size_t{j} * chunk);
        // tm-captured: page is not published until the c.store below
        it->hNext = reinterpret_cast<Item *>(base +
                                             (std::size_t{j} + 1) * chunk);
        // tm-captured: page is not published until the c.store below
        it->itFlags = kItemSlabbed;
        it->clsid = static_cast<std::uint8_t>(cls);
    }
    auto *last = reinterpret_cast<Item *>(base + std::size_t{n - 1} * chunk);
    // tm-captured: page is not published until the c.store below
    last->itFlags = kItemSlabbed;
    last->clsid = static_cast<std::uint8_t>(cls);

    Item *old_head = c.load(&k.freeList);
    c.store(&last->hNext, old_head);
    c.store(&k.freeList, reinterpret_cast<Item *>(base));
    c.store(&k.freeCount, c.load(&k.freeCount) + n);

    // Record page ownership for the rebalancer.
    std::uint64_t count = c.load(&k.pageCount);
    c.store(&k.pages[count], page);
    c.store(&k.pageCount, count + 1);
}

/**
 * Pop a chunk for class @p cls, growing by one page if the budget
 * allows. @return nullptr when the class is exhausted and the memory
 * limit prevents growth (caller evicts, and may signal rebalance).
 */
template <typename Ctx>
TM_CALLABLE Item *
slabsAlloc(Ctx &c, SlabState &s, std::uint32_t cls)
{
    TMEMC_STRICT_SHARED_ENTRY(c, &s.classes[cls], "slabsAlloc");
    // Chunk-level failure site: simulates a class whose free list and
    // growth path are both exhausted (tests drive the eviction and
    // SERVER_ERROR-out-of-memory machinery through this).
    if (TMEMC_UNLIKELY(fault::shouldFail("mc.slabs.alloc")))
        return nullptr;
    SlabClass &k = s.classes[cls];
    Item *head = c.load(&k.freeList);
    if (head == nullptr) {
        const std::uint64_t allocated = c.load(&s.memAllocated);
        if (allocated + s.pageSize > s.memLimit)
            return nullptr;  // At the limit: caller must evict.
        // Page-level failure site plus real malloc exhaustion: both
        // look like "no page", the same shape as hitting the budget.
        void *page = fault::shouldFail("mc.slabs.page_alloc")
                         ? nullptr
                         : c.allocRaw(s.pageSize);
        if (page == nullptr)
            return nullptr;
        c.store(&s.memAllocated, allocated + s.pageSize);
        slabsCarvePage(c, s, cls, page);
        head = c.load(&k.freeList);
    }
    c.store(&k.freeList, c.load(&head->hNext));
    c.store(&k.freeCount, c.load(&k.freeCount) - 1);
    c.store(&k.usedChunks, c.load(&k.usedChunks) + 1);
    c.store(&head->hNext, static_cast<Item *>(nullptr));
    c.store(&head->itFlags, std::uint32_t{0});
    return head;
}

/** Return a chunk to its class free list. */
template <typename Ctx>
TM_CALLABLE void
slabsFree(Ctx &c, SlabState &s, Item *it, std::uint32_t cls)
{
    TMEMC_STRICT_SHARED_ENTRY(c, &s.classes[cls], "slabsFree");
    SlabClass &k = s.classes[cls];
    c.store(&it->itFlags, std::uint32_t{kItemSlabbed});
    c.store(&it->hNext, c.load(&k.freeList));
    c.store(&k.freeList, it);
    c.store(&k.freeCount, c.load(&k.freeCount) + 1);
    c.store(&k.usedChunks, c.load(&k.usedChunks) - 1);
}

/** Is @p ptr inside @p page (page-size from state)? */
inline bool
inPage(const SlabState &s, const void *page, const void *ptr)
{
    const auto p = reinterpret_cast<std::uintptr_t>(page);
    const auto q = reinterpret_cast<std::uintptr_t>(ptr);
    return q >= p && q < p + s.pageSize;
}

} // namespace tmemc::mc

#endif // TMEMC_MC_SLABS_H
