/**
 * @file
 * memcached text-protocol layer: parse commands from a connection
 * buffer, execute them against a CacheIface, and format replies.
 *
 * Supports the commands the study's workloads and examples exercise:
 *
 *   get <key>\r\n
 *   set|add|replace <key> <flags> <exptime> <bytes>\r\n<data>\r\n
 *   cas <key> <flags> <exptime> <bytes> <casid>\r\n<data>\r\n
 *   delete <key>\r\n
 *   incr|decr <key> <delta>\r\n
 *   touch <key> <exptime>\r\n
 *   stats\r\n
 *   flush_all\r\n
 *   version\r\n
 *
 * Parsing happens on the private connection buffer before any lock or
 * transaction is taken, exactly as in memcached; the conversion
 * helpers used here are the uninstrumented clones.
 */

#ifndef TMEMC_MC_PROTOCOL_H
#define TMEMC_MC_PROTOCOL_H

#include <string>

#include "mc/cache_iface.h"

namespace tmemc::mc
{

/**
 * Execute one protocol request and return the reply text.
 * @param cache  Target cache.
 * @param worker Worker-thread id (for per-thread statistics).
 * @param request Raw request text (commands as documented above).
 */
std::string protocolExecute(CacheIface &cache, std::uint32_t worker,
                            const std::string &request);

} // namespace tmemc::mc

#endif // TMEMC_MC_PROTOCOL_H
