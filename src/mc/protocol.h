/**
 * @file
 * memcached text-protocol layer: parse commands from a connection
 * buffer, execute them against a CacheIface, and format replies.
 *
 * Supports the commands the study's workloads and examples exercise:
 *
 *   get <key>\r\n
 *   set|add|replace <key> <flags> <exptime> <bytes>\r\n<data>\r\n
 *   cas <key> <flags> <exptime> <bytes> <casid>\r\n<data>\r\n
 *   delete <key>\r\n
 *   incr|decr <key> <delta>\r\n
 *   touch <key> <exptime>\r\n
 *   stats\r\n
 *   flush_all\r\n
 *   version\r\n
 *
 * Parsing happens on the private connection buffer before any lock or
 * transaction is taken, exactly as in memcached; the conversion
 * helpers used here are the uninstrumented clones.
 */

#ifndef TMEMC_MC_PROTOCOL_H
#define TMEMC_MC_PROTOCOL_H

#include <string>

#include "mc/cache_iface.h"
#include "mc/reply.h"

namespace tmemc::mc
{

/**
 * Execute one protocol request and return the reply text.
 * @param cache  Target cache.
 * @param worker Worker-thread id (for per-thread statistics).
 * @param request Raw request text (commands as documented above).
 */
std::string protocolExecute(CacheIface &cache, std::uint32_t worker,
                            const std::string &request);

/**
 * Zero-copy variant for the retrieval commands: serve `get`/`gets`
 * into @p out with each hit's value bytes as a pinned slab span
 * (CacheIface::getPinned) instead of copying them through a private
 * buffer. Headers, CRLFs and the END line are owned segments.
 *
 * @return true if the request was a retrieval command and @p out now
 *         holds the complete reply; false (with @p out untouched)
 *         when the command is not get/gets or the cache branch cannot
 *         pin (pinnedGetSupported() == false) — the caller falls back
 *         to protocolExecute.
 *
 * Note the grouping trade-off: hits pin per key, so a multi-key get
 * against a sharded cache visits shards per key rather than batching
 * like protocolExecute's getMulti. The 9:1 workloads this path is for
 * are single-key gets, where no batch exists to lose.
 */
bool protocolExecutePinned(CacheIface &cache, std::uint32_t worker,
                           const std::string &request, Reply &out);

// ----------------------------------------------------------------------
// Streaming framing
// ----------------------------------------------------------------------

/** Longest accepted command line, memcached's conn buffer default. */
constexpr std::size_t kMaxCommandLine = 2048;

/** Largest accepted storage-body byte count (memcached -I ceiling). */
constexpr std::size_t kMaxBodyBytes = 8 * 1024 * 1024;

/** Outcome of scanning a connection buffer for one request. */
enum class FrameStatus
{
    NeedMore,  //!< Buffer holds only a prefix; read more bytes.
    Ready,     //!< A complete request of frameLen bytes is present.
    Error,     //!< Malformed beyond recovery; reply and close.
};

/** Result of protocolTryFrame / binary framing. */
struct FrameResult
{
    FrameStatus status = FrameStatus::NeedMore;
    std::size_t frameLen = 0;   //!< Valid when status == Ready.
    const char *error = nullptr; //!< Reply line when status == Error.
};

/**
 * Scan @p len buffered bytes for one complete text-protocol request.
 *
 * Storage commands (set/add/replace/cas/append/prepend) span the
 * command line plus <bytes> of data plus the trailing CRLF; all other
 * commands are exactly one line. The scan never blocks and never
 * consumes: callers slice frameLen bytes off their buffer when the
 * status is Ready. A command line longer than kMaxCommandLine or a
 * body larger than kMaxBodyBytes yields Error with a CLIENT_ERROR
 * reply text, matching memcached's "line too long" handling.
 */
FrameResult protocolTryFrame(const char *data, std::size_t len);

} // namespace tmemc::mc

#endif // TMEMC_MC_PROTOCOL_H
