/**
 * @file
 * Cache configuration, mirroring memcached 1.4.15's `settings` struct
 * for the knobs that matter to the study.
 */

#ifndef TMEMC_MC_SETTINGS_H
#define TMEMC_MC_SETTINGS_H

#include <cstddef>
#include <cstdint>

namespace tmemc::mc
{

/** Tunables for one cache instance. */
struct Settings
{
    /** Total memory budget for item storage (-m). */
    std::size_t maxBytes = 64 * 1024 * 1024;
    /** Slab page size (memcached: 1 MiB; smaller here so the slab
     *  rebalancer has enough pages to move at test scale). */
    std::size_t slabPageSize = 64 * 1024;
    /** Smallest chunk size (roughly memcached's 48 + item overhead). */
    std::size_t slabChunkMin = 96;
    /** Slab growth factor (-f). */
    double slabGrowthFactor = 1.25;
    /** Largest storable item (-I). */
    std::size_t itemSizeMax = 16 * 1024;
    /** Initial hash table power (memcached: 16). */
    std::uint32_t hashPowerInit = 12;
    /** Number of item locks (power of two). */
    std::uint32_t itemLockCount = 1024;
    /** Verbosity: >0 logs events to stderr inside critical sections,
     *  the paper's fprintf-if-verbose pattern. */
    int verbose = 0;
    /** Max number of LRU tail items inspected when evicting. */
    int evictionSearchDepth = 5;
    /** LRU bump throttle: an item is not re-bumped until this many
     *  logical ticks have passed (memcached: 60 seconds). */
    std::uint64_t lruBumpInterval = 64;
    /** Number of shards this cache is split into (1 = unsharded). */
    std::uint32_t shardCount = 1;
    /** Index of this instance within the shard set (stats labels,
     *  per-shard lock names, orec-table sizing). */
    std::uint32_t shardId = 0;
};

} // namespace tmemc::mc

#endif // TMEMC_MC_SETTINGS_H
