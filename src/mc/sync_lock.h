/**
 * @file
 * Lock-based synchronization policy: the Baseline and Semaphore
 * branches.
 *
 * Reproduces memcached 1.4.15's locking structure: the cache, slabs,
 * stats, and slab-rebalance locks; an array of item locks acquired
 * with trylock in a spin loop ("in some cases a pthread lock is used
 * as a spinlock"); per-thread statistics locks; and the
 * condition-variable (Baseline) or semaphore (Semaphore branch)
 * maintenance-thread wakeup.
 *
 * All mutexes are contention-profiled (the mutrace substitute).
 */

#ifndef TMEMC_MC_SYNC_LOCK_H
#define TMEMC_MC_SYNC_LOCK_H

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/backoff.h"
#include "common/sem.h"
#include "mc/ctx.h"
#include "mc/lockprof.h"
#include "mc/site.h"

namespace tmemc::mc
{

/** Maintenance-thread domains (paper Section 3.2: the pattern appears
 *  twice, for hash-table re-balancing and slab maintenance). */
enum class MaintDomain : std::uint8_t
{
    Hash,
    Slab,
};

/** Lock-based policy; C is kBaseline or kSemaphore. */
template <BranchCfg C>
class LockPolicy
{
  public:
    static constexpr BranchCfg cfg = C;

    explicit LockPolicy(std::uint32_t item_locks, std::uint32_t threads)
        : itemLockMask_(item_locks - 1), itemLocks_(item_locks),
          threadStatLocks_(threads)
    {
    }

    // ------------------------------------------------------------------
    // Critical sections. Each takes the site descriptor (ignored here;
    // the TM policy uses it) and passes the body an uninstrumented
    // context.
    // ------------------------------------------------------------------

    template <typename F>
    auto
    cacheSection(const SiteInfo &, F &&f)
    {
        std::lock_guard<ProfiledMutex> guard(cacheLock_);
        PlainCtx<C> c;
        return f(c);
    }

    template <typename F>
    auto
    slabsSection(const SiteInfo &, F &&f)
    {
        std::lock_guard<ProfiledMutex> guard(slabsLock_);
        PlainCtx<C> c;
        return f(c);
    }

    template <typename F>
    auto
    statsSection(const SiteInfo &, F &&f)
    {
        std::lock_guard<ProfiledMutex> guard(statsLock_);
        PlainCtx<C> c;
        return f(c);
    }

    template <typename F>
    auto
    threadStatsSection(const SiteInfo &, std::uint32_t tid, F &&f)
    {
        std::lock_guard<ProfiledMutex> guard(
            threadStatLocks_[tid % threadStatLocks_.size()]);
        PlainCtx<C> c;
        return f(c);
    }

    /**
     * Item critical section: blocking acquire rendered as a trylock
     * spin loop, exactly as memcached does it.
     */
    template <typename F>
    auto
    itemSection(const SiteInfo &, std::uint32_t hv, F &&f)
    {
        ProfiledMutex &mu = itemLocks_[hv & itemLockMask_];
        for (int spins = 0; !mu.try_lock(); ++spins) {
            if (spins < 16)
                cpuRelax();
            else
                std::this_thread::yield();
        }
        PlainCtx<C> c;
        struct Unlock
        {
            ProfiledMutex &mu;
            ~Unlock() { mu.unlock(); }
        } guard{mu};
        return f(c);
    }

    /**
     * Order-violating trylock: attempt an item lock while already
     * inside a cache/slabs section (maintenance and eviction paths).
     * @return true if @p f_ok ran; false if the lock was busy.
     */
    template <typename Ctx, typename FOk>
    bool
    itemTryWithin(Ctx &, std::uint32_t hv, FOk &&f_ok)
    {
        ProfiledMutex &mu = itemLocks_[hv & itemLockMask_];
        if (!mu.try_lock())
            return false;
        PlainCtx<C> c;
        struct Unlock
        {
            ProfiledMutex &mu;
            ~Unlock() { mu.unlock(); }
        } guard{mu};
        f_ok(c);
        return true;
    }

    // ------------------------------------------------------------------
    // Slab-rebalance lock (trylock-dominated; one blocking acquire via
    // trylock + yield, per the paper)
    // ------------------------------------------------------------------

    bool rebalTryAcquire() { return rebalLock_.try_lock(); }
    void rebalRelease() { rebalLock_.unlock(); }

    /** The bool-read used by other critical sections to peek at the
     *  rebalance state; with pthread locks this is a trylock probe. */
    template <typename Ctx>
    bool
    rebalHeld(Ctx &)
    {
        if (rebalLock_.try_lock()) {
            rebalLock_.unlock();
            return false;
        }
        return true;
    }

    // ------------------------------------------------------------------
    // Maintenance wakeup
    // ------------------------------------------------------------------

    /** Wake the domain's maintainer from inside a critical section. */
    template <typename Ctx>
    void
    maintWake(Ctx &c, MaintDomain dom)
    {
        if constexpr (C.semaphores) {
            c.semPost(sem(dom));
        } else {
            cond(dom).notify_one();
        }
    }

    /**
     * Maintainer-side wait. The predicate is evaluated under the
     * domain's lock (condition-variable protocol) or via plain reads
     * between semaphore waits (semaphore protocol, Figure 2).
     */
    template <typename Pred>
    void
    maintWait(MaintDomain dom, Pred &&pred)
    {
        if constexpr (C.semaphores) {
            PlainCtx<C> c;
            while (!pred(c))
                sem(dom).wait();
        } else {
            ProfiledMutex &mu =
                dom == MaintDomain::Hash ? cacheLock_ : slabsLock_;
            std::unique_lock<ProfiledMutex> ul(mu);
            PlainCtx<C> c;
            while (!pred(c))
                cond(dom).wait(ul);
        }
    }

    // ------------------------------------------------------------------
    // Lock-contention profile (mutrace substitute)
    // ------------------------------------------------------------------

    std::vector<LockProfileRow>
    lockProfile() const
    {
        std::vector<LockProfileRow> rows;
        rows.push_back({cacheLock_.name(), cacheLock_.acquisitions(),
                        cacheLock_.contended()});
        rows.push_back({slabsLock_.name(), slabsLock_.acquisitions(),
                        slabsLock_.contended()});
        rows.push_back({statsLock_.name(), statsLock_.acquisitions(),
                        statsLock_.contended()});
        LockProfileRow items{"item_locks[*]", 0, 0};
        for (const auto &mu : itemLocks_) {
            items.acquisitions += mu.acquisitions();
            items.contended += mu.contended();
        }
        rows.push_back(items);
        LockProfileRow tstats{"thread_stats[*]", 0, 0};
        for (const auto &mu : threadStatLocks_) {
            tstats.acquisitions += mu.acquisitions();
            tstats.contended += mu.contended();
        }
        rows.push_back(tstats);
        rows.push_back({rebalLock_.name(), rebalLock_.acquisitions(),
                        rebalLock_.contended()});
        return rows;
    }

  private:
    Semaphore &
    sem(MaintDomain dom)
    {
        return dom == MaintDomain::Hash ? hashSem_ : slabSem_;
    }

    std::condition_variable_any &
    cond(MaintDomain dom)
    {
        return dom == MaintDomain::Hash ? hashCond_ : slabCond_;
    }

    ProfiledMutex cacheLock_{"cache_lock"};
    ProfiledMutex slabsLock_{"slabs_lock"};
    ProfiledMutex statsLock_{"stats_lock"};
    ProfiledMutex rebalLock_{"slab_rebalance_lock"};
    std::uint32_t itemLockMask_;
    std::vector<ProfiledMutex> itemLocks_;
    std::vector<ProfiledMutex> threadStatLocks_;

    std::condition_variable_any hashCond_;
    std::condition_variable_any slabCond_;
    Semaphore hashSem_;
    Semaphore slabSem_;
};

} // namespace tmemc::mc

#endif // TMEMC_MC_SYNC_LOCK_H
