/**
 * @file
 * Key-to-shard routing for the sharded cache.
 *
 * A sharded cache partitions the key space across N independent
 * CacheCore instances by the hash.h digest. Each shard owns a full
 * private synchronization domain — its own pthread locks in the
 * lock-based branches, its own TM domain (commit clock, serial lock,
 * orec stripe) in the TM branches — so operations on different shards
 * never conflict or serialize each other.
 *
 * The factory lives in cache_iface.h (makeShardedCache); this header
 * only exposes the routing function so the protocol layer, tests, and
 * benchmarks can predict shard placement.
 */

#ifndef TMEMC_MC_SHARDED_CACHE_H
#define TMEMC_MC_SHARDED_CACHE_H

#include <cstdint>
#include <string>

namespace tmemc::mc
{

/**
 * Map a key digest to a shard index in [0, shards).
 *
 * Multiplicative range mapping over the *high* bits of the digest:
 * the associative table inside each shard indexes buckets with the
 * digest's low bits, so taking `hv % shards` would correlate shard
 * choice with bucket choice and leave each shard's table lopsided.
 * The 64-bit multiply-shift uses the full digest and is uniform for
 * any shard count, power of two or not.
 */
inline std::uint32_t
shardOfHash(std::uint32_t hv, std::uint32_t shards)
{
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(hv) * shards) >> 32);
}

/**
 * Fault-injection site name consulted before every operation enters
 * shard @p shard ("mc.shard<N>.op"). Arming it with a delayUs policy
 * makes that shard slow — the injected-slow-shard schedule the tail
 * tracer's soak and round-trip tests blame. The consult happens in
 * the sharded wrapper, outside any transaction, so the delay may
 * block (see fault::maybeDelay); a single-shard cache (no wrapper)
 * never consults it.
 */
inline std::string
shardFaultSite(std::uint32_t shard)
{
    return "mc.shard" + std::to_string(shard) + ".op";
}

} // namespace tmemc::mc

#endif // TMEMC_MC_SHARDED_CACHE_H
