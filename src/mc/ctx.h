/**
 * @file
 * Memory contexts: how code inside a critical section touches shared
 * data.
 *
 * The cache core is written once against a context concept; each
 * branch's section runners hand the body the right context:
 *
 *  - PlainCtx: uninstrumented loads/stores, atomic RMW refcounts,
 *    volatile flag access, naive_* library clones, direct I/O. Used by
 *    the lock-based branches everywhere, and by the IP branch inside
 *    privatized item critical sections (paper Figure 1a).
 *
 *  - TmCtx<C>: instrumented loads/stores through the transaction; for
 *    each unsafe-operation category not yet made safe at branch stage
 *    C, the context performs the paper's in-flight switch (the
 *    transaction aborts and re-executes serial-irrevocably, after
 *    which the direct operation is legal).
 *
 * This mirrors GCC clone generation: one source, one uninstrumented
 * clone, one instrumented clone per branch configuration.
 */

#ifndef TMEMC_MC_CTX_H
#define TMEMC_MC_CTX_H

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/fault.h"
#include "common/logging.h"
#include "common/sem.h"
#include "mc/branch.h"
#include "tm/api.h"
#include "tm/strict.h"
#include "tmsafe/tm_alloc.h"
#include "tmsafe/tm_convert.h"
#include "tmsafe/tm_format.h"
#include "tmsafe/tm_string.h"

namespace tmemc::mc
{

/** Version string stood in for libevent's event_get_version(). */
const char *worklistVersion();

// ----------------------------------------------------------------------
// PlainCtx
// ----------------------------------------------------------------------

/**
 * Uninstrumented memory context: locks (or IP-style privatization)
 * provide the exclusion.
 *
 * It is branch-parameterized for one reason: from the Max stage on,
 * the paper replaces *every* refcount RMW and volatile access with a
 * transaction, including the ones reached from privatized item
 * critical sections — "the availability of transaction expressions
 * meant that the total lines-of-code count did not change". Those
 * become the mini-transactions below, and they are what roughly
 * doubles the IP branch's transaction count in Table 2.
 */
template <BranchCfg C>
struct PlainCtx
{
    template <typename T>
    T
    load(const T *p) const
    {
        TMEMC_STRICT_RAW(p, "PlainCtx::load");
        return *p;
    }

    template <typename T>
    void
    store(T *p, T v) const
    {
        TMEMC_STRICT_RAW(p, "PlainCtx::store");
        *p = v;
    }

    // -- refcounts: memcached's lock_incr / lock_decr ------------------
    std::uint64_t
    refIncr(std::uint64_t *rc) const
    {
        if constexpr (C.useTm && !C.isUnsafe(UnsafeCat::AtomicRmw)) {
            static const tm::TxnAttr attr{"mc:refcount-expr",
                                          tm::TxnKind::Atomic, false};
            return tm::run(attr, [&](tm::TxDesc &tx) {
                const std::uint64_t v = tm::txLoad(tx, rc) + 1;
                tm::txStore(tx, rc, v);
                return v;
            });
        } else {
            return __atomic_add_fetch(rc, 1, __ATOMIC_SEQ_CST);
        }
    }

    std::uint64_t
    refDecr(std::uint64_t *rc) const
    {
        if constexpr (C.useTm && !C.isUnsafe(UnsafeCat::AtomicRmw)) {
            static const tm::TxnAttr attr{"mc:refcount-expr",
                                          tm::TxnKind::Atomic, false};
            return tm::run(attr, [&](tm::TxDesc &tx) {
                const std::uint64_t v = tm::txLoad(tx, rc) - 1;
                tm::txStore(tx, rc, v);
                return v;
            });
        } else {
            return __atomic_sub_fetch(rc, 1, __ATOMIC_SEQ_CST);
        }
    }

    std::uint64_t
    refRead(const std::uint64_t *rc) const
    {
        if constexpr (C.useTm && !C.isUnsafe(UnsafeCat::AtomicRmw)) {
            // Load-only mini-transaction: eligible for the
            // invisible-reader fast path (readOnlyHint).
            static const tm::TxnAttr attr{"mc:refcount-expr",
                                          tm::TxnKind::Atomic, false,
                                          true};
            return tm::run(attr, [&](tm::TxDesc &tx) {
                return tm::txLoad(tx, rc);
            });
        } else {
            return __atomic_load_n(rc, __ATOMIC_SEQ_CST);
        }
    }

    // -- volatile maintenance flags -------------------------------------
    // The legacy code's volatile flag accesses are rendered as relaxed
    // atomics: identical codegen for aligned words, but a defined
    // program under the C++ memory model, so the race-detection
    // discipline (TSan CI) checks the rest of the system instead of
    // drowning in the flags memcached always raced on.
    template <typename T>
    T
    volatileLoad(const T *p) const
    {
        if constexpr (C.useTm && !C.isUnsafe(UnsafeCat::Volatile)) {
            // Transaction expression over the renamed non-volatile;
            // load-only, so hinted for the invisible-reader fast path.
            static const tm::TxnAttr attr{"mc:volatile-expr",
                                          tm::TxnKind::Atomic, false,
                                          true};
            return tm::run(attr,
                           [&](tm::TxDesc &tx) { return tm::txLoad(tx, p); });
        } else {
            T out;
            __atomic_load(const_cast<T *>(p), &out, __ATOMIC_RELAXED);
            return out;
        }
    }

    template <typename T>
    void
    volatileStore(T *p, T v) const
    {
        if constexpr (C.useTm && !C.isUnsafe(UnsafeCat::Volatile)) {
            static const tm::TxnAttr attr{"mc:volatile-expr",
                                          tm::TxnKind::Atomic, false};
            tm::run(attr, [&](tm::TxDesc &tx) { tm::txStore(tx, p, v); });
        } else {
            __atomic_store(p, &v, __ATOMIC_RELAXED);
        }
    }

    // -- library calls (naive same-source clones) -----------------------
    int
    memcmpS(const void *a, const void *b, std::size_t n) const
    {
        return tmsafe::naive_memcmp(a, b, n);
    }

    void
    memcpyOut(void *priv_dst, const void *shared_src, std::size_t n) const
    {
        tmsafe::naive_memcpy(priv_dst, shared_src, n);
    }

    void
    memcpyIn(void *shared_dst, const void *priv_src, std::size_t n) const
    {
        tmsafe::naive_memcpy(shared_dst, priv_src, n);
    }

    void
    memmoveS(void *shared_dst, const void *shared_src,
             std::size_t n) const
    {
        tmsafe::naive_memmove(shared_dst, shared_src, n);
    }

    unsigned long long
    strtoullS(const char *shared, std::size_t max_len) const
    {
        char buf[128];
        std::size_t i = 0;
        for (; i < max_len && i < sizeof(buf) - 1; ++i) {
            buf[i] = shared[i];
            if (buf[i] == '\0')
                break;
        }
        buf[i < sizeof(buf) - 1 ? i : sizeof(buf) - 1] = '\0';
        return std::strtoull(buf, nullptr, 10);
    }

    int
    snprintfUllS(char *shared_dst, std::size_t n,
                 unsigned long long v) const
    {
        return std::snprintf(shared_dst, n, "%llu", v);
    }

    int
    snprintfStatS(char *shared_dst, std::size_t n, const char *name,
                  unsigned long long v) const
    {
        return std::snprintf(shared_dst, n, "STAT %s %llu\r\n", name, v);
    }

    // -- allocation ------------------------------------------------------
    /**
     * @return nullptr on exhaustion. An allocation hiccup must surface
     * as OpStatus::OutOfMemory (the SERVER_ERROR reply path), never
     * kill the server; callers handle nullptr the same way they handle
     * a slab class at its budget.
     */
    void *
    allocRaw(std::size_t bytes) const
    {
        if (TMEMC_UNLIKELY(fault::shouldFail("mc.ctx.alloc_raw")))
            return nullptr;
        return std::malloc(bytes);
    }

    void freeRaw(void *p) const { std::free(p); }

    // -- I/O and termination ----------------------------------------------
    void
    logEvent(bool enabled, const char *msg) const
    {
        if (enabled)
            std::fprintf(stderr, "%s\n", msg);
    }

    void semPost(Semaphore &s) const { s.post(); }

    void
    assertThat(bool ok, const char *what) const
    {
        if (TMEMC_UNLIKELY(!ok))
            panic("assertion failed: %s", what);
    }

    const char *eventVersion() const { return worklistVersion(); }

    /** Helper-call annotation point; meaningless without a TM. */
    void noteHelper(const char *) const {}
};

// ----------------------------------------------------------------------
// TmCtx
// ----------------------------------------------------------------------

/** Instrumented memory context for branch configuration C. */
template <BranchCfg C>
struct TmCtx
{
    tm::TxDesc &tx;

    template <typename T>
    TM_SAFE T
    load(const T *p) const
    {
        return tm::txLoad(tx, p);
    }

    template <typename T>
    TM_SAFE void
    store(T *p, T v) const
    {
        tm::txStore(tx, p, v);
    }

    // -- refcounts -------------------------------------------------------
    TM_CALLABLE std::uint64_t
    refIncr(std::uint64_t *rc) const
    {
        if constexpr (C.isUnsafe(UnsafeCat::AtomicRmw)) {
            tm::unsafeOp(tx, "lock_incr");
            return __atomic_add_fetch(rc, 1, __ATOMIC_SEQ_CST);
        } else {
            const std::uint64_t v = tm::txLoad(tx, rc) + 1;
            tm::txStore(tx, rc, v);
            return v;
        }
    }

    TM_CALLABLE std::uint64_t
    refDecr(std::uint64_t *rc) const
    {
        if constexpr (C.isUnsafe(UnsafeCat::AtomicRmw)) {
            tm::unsafeOp(tx, "lock_decr");
            return __atomic_sub_fetch(rc, 1, __ATOMIC_SEQ_CST);
        } else {
            const std::uint64_t v = tm::txLoad(tx, rc) - 1;
            tm::txStore(tx, rc, v);
            return v;
        }
    }

    TM_CALLABLE std::uint64_t
    refRead(const std::uint64_t *rc) const
    {
        if constexpr (C.isUnsafe(UnsafeCat::AtomicRmw)) {
            tm::unsafeOp(tx, "atomic_load");
            return __atomic_load_n(rc, __ATOMIC_SEQ_CST);
        } else {
            return tm::txLoad(tx, rc);
        }
    }

    // -- volatile maintenance flags (renamed non-volatile at Max) ---------
    template <typename T>
    TM_CALLABLE T
    volatileLoad(const T *p) const
    {
        if constexpr (C.isUnsafe(UnsafeCat::Volatile)) {
            tm::unsafeOp(tx, "volatile-read");
            T out;
            __atomic_load(const_cast<T *>(p), &out, __ATOMIC_RELAXED);
            return out;
        } else {
            return tm::txLoad(tx, p);
        }
    }

    template <typename T>
    TM_CALLABLE void
    volatileStore(T *p, T v) const
    {
        if constexpr (C.isUnsafe(UnsafeCat::Volatile)) {
            tm::unsafeOp(tx, "volatile-write");
            __atomic_store(p, &v, __ATOMIC_RELAXED);
        } else {
            tm::txStore(tx, p, v);
        }
    }

    // -- library calls -----------------------------------------------------
    TM_CALLABLE int
    memcmpS(const void *a, const void *b, std::size_t n) const
    {
        noteHelper("memcmp");
        if constexpr (C.isUnsafe(UnsafeCat::Lib)) {
            tm::unsafeOp(tx, "memcmp");
            return tmsafe::naive_memcmp(a, b, n);
        } else {
            return tmsafe::tm_memcmp(tx, a, b, n);
        }
    }

    TM_CALLABLE void
    memcpyOut(void *priv_dst, const void *shared_src, std::size_t n) const
    {
        noteHelper("memcpy");
        if constexpr (C.isUnsafe(UnsafeCat::Lib)) {
            tm::unsafeOp(tx, "memcpy");
            tmsafe::naive_memcpy(priv_dst, shared_src, n);
        } else {
            tm::txLoadBytes(tx, priv_dst, shared_src, n);
        }
    }

    TM_CALLABLE void
    memcpyIn(void *shared_dst, const void *priv_src, std::size_t n) const
    {
        noteHelper("memcpy");
        if constexpr (C.isUnsafe(UnsafeCat::Lib)) {
            tm::unsafeOp(tx, "memcpy");
            tmsafe::naive_memcpy(shared_dst, priv_src, n);
        } else {
            tm::txStoreBytes(tx, shared_dst, priv_src, n);
        }
    }

    TM_CALLABLE void
    memmoveS(void *shared_dst, const void *shared_src,
             std::size_t n) const
    {
        noteHelper("memmove");
        if constexpr (C.isUnsafe(UnsafeCat::Lib)) {
            tm::unsafeOp(tx, "memmove");
            tmsafe::naive_memmove(shared_dst, shared_src, n);
        } else {
            tmsafe::tm_memmove(tx, shared_dst, shared_src, n);
        }
    }

    TM_CALLABLE unsigned long long
    strtoullS(const char *shared, std::size_t max_len) const
    {
        noteHelper("strtoull");
        if constexpr (C.isUnsafe(UnsafeCat::Lib)) {
            tm::unsafeOp(tx, "strtoull");
            return PlainCtx<C>{}.strtoullS(shared, max_len);
        } else {
            return tmsafe::tm_strtoull(tx, shared, max_len, nullptr, 10);
        }
    }

    TM_CALLABLE int
    snprintfUllS(char *shared_dst, std::size_t n,
                 unsigned long long v) const
    {
        noteHelper("snprintf");
        if constexpr (C.isUnsafe(UnsafeCat::Lib)) {
            tm::unsafeOp(tx, "snprintf");
            return std::snprintf(shared_dst, n, "%llu", v);
        } else {
            return tmsafe::tm_snprintf_ull(tx, shared_dst, n, v);
        }
    }

    TM_CALLABLE int
    snprintfStatS(char *shared_dst, std::size_t n, const char *name,
                  unsigned long long v) const
    {
        noteHelper("snprintf");
        if constexpr (C.isUnsafe(UnsafeCat::Lib)) {
            tm::unsafeOp(tx, "snprintf");
            return std::snprintf(shared_dst, n, "STAT %s %llu\r\n", name,
                                 v);
        } else {
            return tmsafe::tm_snprintf_stat(tx, shared_dst, n, name, v);
        }
    }

    // -- allocation ---------------------------------------------------------
    /** Same nullptr-on-exhaustion contract as PlainCtx::allocRaw. */
    TM_SAFE void *
    allocRaw(std::size_t bytes) const
    {
        if (TMEMC_UNLIKELY(fault::shouldFail("mc.ctx.alloc_raw")))
            return nullptr;
        return tm::txTryMalloc(tx, bytes);
    }

    TM_SAFE void freeRaw(void *p) const { tm::txFree(tx, p); }

    // -- I/O and termination --------------------------------------------------
    TM_CALLABLE void
    logEvent(bool enabled, const char *msg) const
    {
        if (!enabled)
            return;  // The fprintf-if-verbose pattern: conditional.
        if constexpr (C.isUnsafe(UnsafeCat::Io)) {
            tm::unsafeOp(tx, "fprintf");
            std::fprintf(stderr, "%s\n", msg);
        } else {
            tm::onCommit(tx, [msg] { std::fprintf(stderr, "%s\n", msg); });
        }
    }

    TM_CALLABLE void
    semPost(Semaphore &s) const
    {
        if constexpr (C.isUnsafe(UnsafeCat::Io)) {
            tm::unsafeOp(tx, "sem_post");
            s.post();
        } else {
            tm::onCommit(tx, [&s] { s.post(); });
        }
    }

    TM_CALLABLE void
    assertThat(bool ok, const char *what) const
    {
        if (TMEMC_LIKELY(ok))
            return;
        if constexpr (C.isUnsafe(UnsafeCat::Io)) {
            // Pre-onCommit: assert's I/O is an unsafe operation.
            tm::unsafeOp(tx, "assert");
        }
        // Post-onCommit: pure-wrapped terminating assert (paper
        // Section 3.5 — safe because atexit handlers never run and no
        // other thread can observe the doomed state).
        panic("assertion failed: %s", what);
    }

    TM_CALLABLE const char *
    eventVersion() const
    {
        if constexpr (C.isUnsafe(UnsafeCat::Io)) {
            tm::unsafeOp(tx, "event_get_version");
            return worklistVersion();
        } else {
            // Paper: call it once outside any transaction and use the
            // stored value (the version cannot change mid-run).
            static const char *cached = worklistVersion();
            return cached;
        }
    }

    /** transaction_callable / inferred-safety model (Section 2). */
    TM_SAFE void
    noteHelper(const char *name) const
    {
        tm::noteCall(tx,
                     C.annotateCallable ? tm::FnAttr::Callable
                                        : tm::FnAttr::Unannotated,
                     name);
    }
};

} // namespace tmemc::mc

#endif // TMEMC_MC_CTX_H
