/**
 * @file
 * Branch configuration: the ladder of transactionalization stages from
 * the paper's Section 3, expressed as a constexpr descriptor.
 *
 * Each stage changes which operations inside critical sections are
 * unsafe:
 *
 *   stage 3 (Replacing Locks):   refcount RMW, volatile flags, libc
 *                                calls, and I/O are all unsafe inside
 *                                the new relaxed transactions.
 *   stage 3 (Handling Volatiles / Max): refcounts and volatiles become
 *                                transactional accesses.
 *   stage 4 (Lib):               libc calls replaced by tmsafe ones.
 *   stage 5 (onCommit):          I/O and sem_post move to handlers;
 *                                no transaction can serialize.
 *
 * The item-lock strategy is the IP/IT fork from Section 3.1.
 */

#ifndef TMEMC_MC_BRANCH_H
#define TMEMC_MC_BRANCH_H

#include <cstdint>
#include <string>
#include <vector>

#include "tm/attr.h"

namespace tmemc::mc
{

/** How item locks are rendered (paper Section 3.1, Figure 1). */
enum class ItemStrategy : std::uint8_t
{
    PthreadSpin,  //!< Baseline: pthread mutex, spin on trylock.
    TmBool,       //!< IP: transactional boolean lock; privatizes data.
    TxSection,    //!< IT: the critical section becomes a transaction.
};

/** Categories of unsafe operation inside critical sections. */
enum class UnsafeCat : std::uint8_t
{
    AtomicRmw,  //!< lock_incr-style refcount ops (safe after Max).
    Volatile,   //!< Maintenance/status flags (safe after Max).
    Lib,        //!< memcmp/memcpy/strtoull/snprintf/... (safe after Lib).
    Io,         //!< fprintf/perror/sem_post/event_get_version
                //!< (moved out after onCommit).
};

/** One branch of the transactionalized memcached. */
struct BranchCfg
{
    /** Item-lock rendering. */
    ItemStrategy items = ItemStrategy::PthreadSpin;
    /** Condition variables replaced with semaphores (Section 3.2). */
    bool semaphores = false;
    /** Locks replaced with transactions at all. */
    bool useTm = false;
    /** transaction_callable annotations applied (the *-Callable fork). */
    bool annotateCallable = false;
    /** Volatiles and refcounts transactionalized (the *-Max fork). */
    bool safeVolatiles = false;
    /** Standard library calls via tmsafe (the *-Lib fork). */
    bool safeLibs = false;
    /** I/O and sem_post via onCommit handlers (the *-onCommit fork). */
    bool onCommitIo = false;
    /**
     * The paper's future-work optimization (Section 3.3, citing
     * Dragojevic et al.): once whole operations are transactions, the
     * reference-count increments/decrements that bridge a get's
     * find/copy/release sections can be elided — the fused transaction
     * covers the whole window, and conflict detection replaces the
     * count. Implemented as an extension branch ("IT-Fused").
     */
    bool fusedGet = false;
    /**
     * Run on the release-acquire STM (tm::AlgoKind::RA) instead of the
     * GCC-default eager algorithm: acquire loads, release commits, no
     * fences outside the serial fallback (the "IT-RA" branch).
     */
    bool raTm = false;

    /** Is a category still unsafe for this branch? */
    constexpr bool
    isUnsafe(UnsafeCat cat) const
    {
        switch (cat) {
          case UnsafeCat::AtomicRmw:
          case UnsafeCat::Volatile:
            return !safeVolatiles;
          case UnsafeCat::Lib:
            return !safeLibs;
          case UnsafeCat::Io:
            return !onCommitIo;
        }
        return true;
    }
};

// ----------------------------------------------------------------------
// The named branches from the paper's figures
// ----------------------------------------------------------------------

inline constexpr BranchCfg kBaseline{};

inline constexpr BranchCfg kSemaphore{
    .items = ItemStrategy::PthreadSpin, .semaphores = true};

inline constexpr BranchCfg kIP{.items = ItemStrategy::TmBool,
                               .semaphores = true,
                               .useTm = true};

inline constexpr BranchCfg kIT{.items = ItemStrategy::TxSection,
                               .semaphores = true,
                               .useTm = true};

inline constexpr BranchCfg kIPCallable = [] {
    BranchCfg c = kIP;
    c.annotateCallable = true;
    return c;
}();

inline constexpr BranchCfg kITCallable = [] {
    BranchCfg c = kIT;
    c.annotateCallable = true;
    return c;
}();

inline constexpr BranchCfg kIPMax = [] {
    BranchCfg c = kIPCallable;
    c.safeVolatiles = true;
    return c;
}();

inline constexpr BranchCfg kITMax = [] {
    BranchCfg c = kITCallable;
    c.safeVolatiles = true;
    return c;
}();

inline constexpr BranchCfg kIPLib = [] {
    BranchCfg c = kIPMax;
    c.safeLibs = true;
    return c;
}();

inline constexpr BranchCfg kITLib = [] {
    BranchCfg c = kITMax;
    c.safeLibs = true;
    return c;
}();

inline constexpr BranchCfg kIPOnCommit = [] {
    BranchCfg c = kIPLib;
    c.onCommitIo = true;
    return c;
}();

inline constexpr BranchCfg kITOnCommit = [] {
    BranchCfg c = kITLib;
    c.onCommitIo = true;
    return c;
}();

inline constexpr BranchCfg kITFused = [] {
    BranchCfg c = kITOnCommit;
    c.fusedGet = true;
    return c;
}();

/**
 * Branch #14: the fully transactionalized cache (IT-Fused shape) on
 * the release-acquire STM. Same code paths, weaker memory ordering —
 * the opacity checker and litmus suite are what certify it.
 */
inline constexpr BranchCfg kITRA = [] {
    BranchCfg c = kITFused;
    c.raTm = true;
    return c;
}();

/**
 * Ablation-only branch: the Lib stage with the callable annotations
 * stripped. Under GCC's safety inference it behaves exactly like
 * IP-Lib; under a conservative compiler
 * (RuntimeCfg::inferCallableSafety = false) every helper call from a
 * relaxed transaction serializes — which is what the callable
 * annotation exists to prevent.
 */
inline constexpr BranchCfg kIPLibBare = [] {
    BranchCfg c = kIPLib;
    c.annotateCallable = false;
    return c;
}();

/** Stable names used by benchmarks and the branch registry. */
const char *branchName(const BranchCfg &cfg);

/** All branch names, in paper order. */
std::vector<std::string> allBranchNames();

/**
 * TM runtime configuration a branch expects: IT-RA selects the RA
 * algorithm; every other branch runs the GCC-default configuration.
 * Callers (server, harness, tests) must configure() this before
 * creating the branch's cache.
 */
tm::RuntimeCfg runtimeCfgFor(const std::string &branch);

} // namespace tmemc::mc

#endif // TMEMC_MC_BRANCH_H
