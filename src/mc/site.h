/**
 * @file
 * Critical-section site descriptors.
 *
 * A SiteInfo is the static description of one critical section in the
 * cache source: its name, the unsafe-operation categories that occur
 * on *every* path through it, and the categories that occur on *some*
 * path. This is the information the "compiler" (the Draft C++ TM
 * Specification's static checker) derives: a transaction whose every
 * path is unsafe at the current branch stage must begin in serial mode
 * (Start Serial); one with conditional unsafe paths must be relaxed
 * and switches in flight when a path is hit; one with neither can be
 * marked atomic.
 */

#ifndef TMEMC_MC_SITE_H
#define TMEMC_MC_SITE_H

#include <cstdint>

#include "mc/branch.h"

namespace tmemc::mc
{

/** Bitmask over UnsafeCat. */
using UnsafeMask = std::uint8_t;

constexpr UnsafeMask
maskOf(UnsafeCat cat)
{
    return static_cast<UnsafeMask>(1u << static_cast<unsigned>(cat));
}

constexpr UnsafeMask kNoUnsafe = 0;
constexpr UnsafeMask kRmw = maskOf(UnsafeCat::AtomicRmw);
constexpr UnsafeMask kVolatile = maskOf(UnsafeCat::Volatile);
constexpr UnsafeMask kLib = maskOf(UnsafeCat::Lib);
constexpr UnsafeMask kIo = maskOf(UnsafeCat::Io);

/** Static description of one critical-section site. */
struct SiteInfo
{
    const char *name;
    /** Categories on every path (earliest-op position). */
    UnsafeMask alwaysUnsafe;
    /** Categories on some path only. */
    UnsafeMask maybeUnsafe;
    /** No path through this section writes shared state: the runtime
     *  may start it on the invisible-reader fast path. Advisory — a
     *  store would still promote to the full path at run time. */
    bool readOnly = false;
};

/** True if any category in @p mask is still unsafe for @p cfg. */
constexpr bool
anyUnsafe(const BranchCfg &cfg, UnsafeMask mask)
{
    for (auto cat : {UnsafeCat::AtomicRmw, UnsafeCat::Volatile,
                     UnsafeCat::Lib, UnsafeCat::Io}) {
        if ((mask & maskOf(cat)) != 0 && cfg.isUnsafe(cat))
            return true;
    }
    return false;
}

} // namespace tmemc::mc

#endif // TMEMC_MC_SITE_H
