/**
 * @file
 * Worklist / connection dispatcher: the libevent substitute.
 *
 * memcached's threads.c hands accepted connections to worker threads
 * through per-worker queues, with a libevent notification pipe waking
 * the worker. This reproduces that pattern — per-worker MPSC queues, a
 * semaphore wakeup, and a round-robin dispatcher — without the
 * network: "connections" carry request buffers produced in-process.
 *
 * worklistVersion() stands in for event_get_version(), the unsafe
 * library call the paper had to move out of a transaction (Section
 * 3.5).
 */

#ifndef TMEMC_MC_WORKLIST_H
#define TMEMC_MC_WORKLIST_H

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/sem.h"
#include "mc/ctx.h"

namespace tmemc::mc
{

/** A queued unit of connection work. */
struct ConnWork
{
    std::uint64_t connId = 0;
    std::string request;               //!< Raw protocol text.
    std::function<void(std::string)> onReply;  //!< Response sink.
};

/**
 * Per-worker MPSC work queue with semaphore wakeup (the libevent
 * notify-pipe analogue).
 */
class WorkQueue
{
  public:
    void
    push(ConnWork work)
    {
        {
            std::lock_guard<std::mutex> guard(mu_);
            items_.push_back(std::move(work));
        }
        ready_.post();
    }

    /** Block for the next item; empty request string signals shutdown. */
    ConnWork
    pop()
    {
        ready_.wait();
        std::lock_guard<std::mutex> guard(mu_);
        ConnWork work = std::move(items_.front());
        items_.pop_front();
        return work;
    }

  private:
    std::mutex mu_;
    std::deque<ConnWork> items_;
    Semaphore ready_;
};

/**
 * Round-robin dispatcher over N worker threads, each running a
 * caller-provided handler for every queued request.
 */
class Worklist
{
  public:
    using Handler =
        std::function<std::string(std::uint32_t worker, const ConnWork &)>;

    Worklist(std::uint32_t workers, Handler handler)
        : queues_(workers), handler_(std::move(handler))
    {
        for (std::uint32_t w = 0; w < workers; ++w) {
            threads_.emplace_back([this, w] { workerLoop(w); });
        }
    }

    ~Worklist()
    {
        for (auto &q : queues_)
            q.push(ConnWork{});  // Empty request = shutdown.
        for (auto &t : threads_)
            t.join();
    }

    /** Dispatch one request; the reply callback runs on the worker. */
    void
    submit(std::string request, std::function<void(std::string)> on_reply)
    {
        const std::uint64_t id =
            nextConn_.fetch_add(1, std::memory_order_relaxed);
        ConnWork work;
        work.connId = id;
        work.request = std::move(request);
        work.onReply = std::move(on_reply);
        queues_[id % queues_.size()].push(std::move(work));
    }

    std::uint32_t workers() const
    {
        return static_cast<std::uint32_t>(queues_.size());
    }

  private:
    void
    workerLoop(std::uint32_t w)
    {
        for (;;) {
            ConnWork work = queues_[w].pop();
            if (work.request.empty())
                return;
            std::string reply = handler_(w, work);
            if (work.onReply)
                work.onReply(std::move(reply));
        }
    }

    std::vector<WorkQueue> queues_;
    Handler handler_;
    std::vector<std::thread> threads_;
    // atom-protocol: relaxed-counter
    std::atomic<std::uint64_t> nextConn_{0};
};

} // namespace tmemc::mc

#endif // TMEMC_MC_WORKLIST_H
