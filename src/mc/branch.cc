/**
 * @file
 * Branch registry: explicit instantiation of CacheCore for every
 * branch in the paper's ladder, plus the name-based factory.
 *
 * This file is the reproduction's analogue of "expect to fork the
 * code" (Section 6): twelve clones of the same cache source, one per
 * synchronization discipline.
 */

#include "mc/branch.h"

#include "mc/cache_iface.h"
#include "mc/sync_lock.h"
#include "mc/sync_tm.h"

namespace tmemc::mc
{

const char *
worklistVersion()
{
    return "tmemc-worklist 2.0.21-stable";
}

const char *
branchName(const BranchCfg &cfg)
{
    if (!cfg.useTm)
        return cfg.semaphores ? "Semaphore" : "Baseline";
    const bool ip = cfg.items == ItemStrategy::TmBool;
    if (cfg.raTm)
        return "IT-RA";
    if (cfg.fusedGet)
        return "IT-Fused";
    if (cfg.onCommitIo)
        return ip ? "IP-onCommit" : "IT-onCommit";
    if (cfg.safeLibs)
        return ip ? "IP-Lib" : "IT-Lib";
    if (cfg.safeVolatiles)
        return ip ? "IP-Max" : "IT-Max";
    if (cfg.annotateCallable)
        return ip ? "IP-Callable" : "IT-Callable";
    return ip ? "IP" : "IT";
}

std::vector<std::string>
allBranchNames()
{
    return {"Baseline",    "Semaphore",   "IP",          "IT",
            "IP-Callable", "IT-Callable", "IP-Max",      "IT-Max",
            "IP-Lib",      "IT-Lib",      "IP-onCommit", "IT-onCommit",
            "IT-Fused",    "IT-RA"};
}

tm::RuntimeCfg
runtimeCfgFor(const std::string &branch)
{
    tm::RuntimeCfg cfg;
    if (branch == "IT-RA")
        cfg.algo = tm::AlgoKind::RA;
    return cfg;
}

namespace
{

/** Adapter from CacheCore<P> to the erased interface. */
template <typename P>
class CacheAdapter final : public CacheIface
{
  public:
    CacheAdapter(const Settings &settings, std::uint32_t threads)
        : core_(settings, threads)
    {
    }

    const char *branchName() const override
    {
        return mc::branchName(P::cfg);
    }

    const BranchCfg &
    branchCfg() const override
    {
        static constexpr BranchCfg cfg = P::cfg;
        return cfg;
    }

    GetResult
    get(std::uint32_t tid, const char *key, std::size_t nkey, char *out,
        std::size_t out_cap) override
    {
        const auto r = core_.get(tid, key, nkey, out, out_cap);
        return {r.status, r.vlen, r.casId};
    }

    bool
    pinnedGetSupported() const override
    {
        return CacheCore<P>::pinnedGetSupported();
    }

    PinnedValue
    getPinned(std::uint32_t tid, const char *key,
              std::size_t nkey) override
    {
        if constexpr (CacheCore<P>::pinnedGetSupported()) {
            const auto r = core_.getPinned(tid, key, nkey);
            PinnedValue v;
            v.status = r.status;
            v.data = r.data;
            v.vlen = r.vlen;
            v.casId = r.casId;
            v.tid = tid;
            v.handle = r.it;
            v.owner = r.it != nullptr ? this : nullptr;
            return v;
        } else {
            (void)tid;
            (void)key;
            (void)nkey;
            return {};
        }
    }

    void
    releasePinned(std::uint32_t tid, void *handle) override
    {
        if constexpr (CacheCore<P>::pinnedGetSupported()) {
            core_.releasePinned(tid, static_cast<Item *>(handle));
        } else {
            (void)tid;
            (void)handle;
        }
    }

    OpStatus
    store(std::uint32_t tid, const char *key, std::size_t nkey,
          const char *val, std::size_t nbytes, StoreMode mode,
          std::uint64_t cas_expected) override
    {
        return core_.store(tid, key, nkey, val, nbytes, mode,
                           cas_expected);
    }

    OpStatus
    del(std::uint32_t tid, const char *key, std::size_t nkey) override
    {
        return core_.del(tid, key, nkey);
    }

    OpStatus
    arith(std::uint32_t tid, const char *key, std::size_t nkey,
          std::uint64_t delta, bool incr,
          std::uint64_t &out_value) override
    {
        const auto r = core_.arith(tid, key, nkey, delta, incr);
        out_value = r.value;
        return r.status;
    }

    OpStatus
    touch(std::uint32_t tid, const char *key, std::size_t nkey,
          std::int64_t exptime) override
    {
        return core_.touch(tid, key, nkey, exptime);
    }

    OpStatus
    concat(std::uint32_t tid, const char *key, std::size_t nkey,
           const char *extra, std::size_t nextra, bool append) override
    {
        return core_.concat(tid, key, nkey, extra, nextra, append);
    }

    std::size_t
    statsText(std::uint32_t tid, char *out, std::size_t cap) override
    {
        return core_.statsText(tid, out, cap);
    }

    void flushAll(std::uint32_t tid) override { core_.flushAll(tid); }

    GlobalStats globalStats() override
    {
        return core_.globalStatsSnapshot();
    }

    ThreadStatsBlock threadStats() override
    {
        return core_.aggregateThreadStats();
    }

    std::vector<LockProfileRow> lockProfile() const override
    {
        return core_.lockProfile();
    }

    std::uint64_t linkedItemCount() override
    {
        return core_.linkedItemCount();
    }

    std::uint32_t hashPowerNow() override { return core_.hashPowerNow(); }

    void quiesceMaintenance() override { core_.quiesceMaintenance(); }

    void
    requestRebalance(std::uint32_t src_cls, std::uint32_t dst_cls) override
    {
        core_.requestRebalance(src_cls, dst_cls);
    }

  private:
    CacheCore<P> core_;
};

} // namespace

std::unique_ptr<CacheIface>
makeCache(const std::string &branch, const Settings &settings,
          std::uint32_t worker_threads)
{
    const std::uint32_t t = worker_threads == 0 ? 1 : worker_threads;

    if (branch == "Baseline") {
        return std::make_unique<CacheAdapter<LockPolicy<kBaseline>>>(
            settings, t);
    }
    if (branch == "Semaphore") {
        return std::make_unique<CacheAdapter<LockPolicy<kSemaphore>>>(
            settings, t);
    }
    if (branch == "IP")
        return std::make_unique<CacheAdapter<TmPolicy<kIP>>>(settings, t);
    if (branch == "IT")
        return std::make_unique<CacheAdapter<TmPolicy<kIT>>>(settings, t);
    if (branch == "IP-Callable") {
        return std::make_unique<CacheAdapter<TmPolicy<kIPCallable>>>(
            settings, t);
    }
    if (branch == "IT-Callable") {
        return std::make_unique<CacheAdapter<TmPolicy<kITCallable>>>(
            settings, t);
    }
    if (branch == "IP-Max") {
        return std::make_unique<CacheAdapter<TmPolicy<kIPMax>>>(settings,
                                                                t);
    }
    if (branch == "IT-Max") {
        return std::make_unique<CacheAdapter<TmPolicy<kITMax>>>(settings,
                                                                t);
    }
    if (branch == "IP-Lib") {
        return std::make_unique<CacheAdapter<TmPolicy<kIPLib>>>(settings,
                                                                t);
    }
    if (branch == "IT-Lib") {
        return std::make_unique<CacheAdapter<TmPolicy<kITLib>>>(settings,
                                                                t);
    }
    if (branch == "IP-onCommit") {
        return std::make_unique<CacheAdapter<TmPolicy<kIPOnCommit>>>(
            settings, t);
    }
    if (branch == "IT-onCommit") {
        return std::make_unique<CacheAdapter<TmPolicy<kITOnCommit>>>(
            settings, t);
    }
    if (branch == "IT-Fused") {
        return std::make_unique<CacheAdapter<TmPolicy<kITFused>>>(
            settings, t);
    }
    if (branch == "IT-RA") {
        return std::make_unique<CacheAdapter<TmPolicy<kITRA>>>(
            settings, t);
    }
    if (branch == "IP-Lib-Bare") {
        return std::make_unique<CacheAdapter<TmPolicy<kIPLibBare>>>(
            settings, t);
    }
    return nullptr;
}

} // namespace tmemc::mc
