/**
 * @file
 * Item layout, modelled on memcached 1.4.15's `item` struct: hash-chain
 * and LRU links, a reference count maintained with atomic
 * read-modify-write in the lock-based branches (memcached's
 * `lock_incr` inline assembly), linkage flags, and inline key+value
 * data.
 *
 * Accesses to item fields go through a branch's memory-context object,
 * so one definition serves the uninstrumented, privatizing, and fully
 * transactional branches.
 */

#ifndef TMEMC_MC_ITEM_H
#define TMEMC_MC_ITEM_H

#include <cstddef>
#include <cstdint>

namespace tmemc::mc
{

/** Item linkage flags (memcached it_flags). */
enum ItemFlags : std::uint32_t
{
    kItemLinked = 1,   //!< Present in the hash table and LRU.
    kItemSlabbed = 2,  //!< On a slab free list.
};

/**
 * A cache item. Header plus inline data: nkey key bytes followed by
 * nbytes value bytes. Alignment is 8 so TM word accesses to the header
 * fields never straddle.
 */
struct alignas(8) Item
{
    Item *hNext;              //!< Hash chain.
    Item *prev;               //!< LRU towards head.
    Item *next;               //!< LRU towards tail.
    std::uint64_t refcount;   //!< Reference count (see file comment).
    std::uint64_t casId;      //!< Compare-and-swap identity.
    std::uint64_t lastBump;   //!< Logical time of last LRU bump.
    std::int64_t exptime;     //!< Logical expiry time; 0 = never.
    std::uint32_t itFlags;    //!< ItemFlags.
    std::uint32_t nbytes;     //!< Value length.
    std::uint16_t nkey;       //!< Key length.
    std::uint8_t clsid;       //!< Owning slab class.
    std::uint8_t pad0;
    std::uint32_t pad1;

    /** Start of the inline key bytes. */
    char *key() { return reinterpret_cast<char *>(this + 1); }
    const char *key() const
    {
        return reinterpret_cast<const char *>(this + 1);
    }

    /** Start of the inline value bytes (8-aligned after the key). */
    char *
    value()
    {
        return key() + ((nkey + 7u) & ~7u);
    }
    const char *
    value() const
    {
        return key() + ((nkey + 7u) & ~7u);
    }

    /** Total footprint of an item with the given key/value sizes. */
    static std::size_t
    totalSize(std::size_t nkey, std::size_t nbytes)
    {
        return sizeof(Item) + ((nkey + 7) & ~std::size_t{7}) + nbytes;
    }
};

static_assert(sizeof(Item) % 8 == 0, "item header must stay word-aligned");

} // namespace tmemc::mc

#endif // TMEMC_MC_ITEM_H
