/**
 * @file
 * ShardedCache: a CacheIface that partitions keys across N independent
 * single-shard caches (see sharded_cache.h for the routing function).
 *
 * Every per-key operation routes to exactly one shard; multi-key gets
 * are grouped so each touched shard is visited once; whole-cache
 * operations (stats, flush, maintenance quiescence) fan out and
 * aggregate. The ASCII stats reply keeps the unsharded keys as sums
 * over shards — existing consumers parse it unchanged — and appends
 * shard_count plus per-shard hit/miss/evict rows.
 */

#include "mc/sharded_cache.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/fault.h"
#include "common/logging.h"
#include "mc/cache_iface.h"
#include "mc/hash.h"
#include "obs/hist.h"
#include "obs/metrics.h"
#include "obs/tail.h"

namespace tmemc::mc
{

namespace
{

/**
 * Records one HistKind::CacheOp sample covering the enclosing scope.
 * Lives only in the sharded wrapper: makeShardedCache with shards==1
 * returns the underlying cache directly, so single-shard setups (the
 * benches' default, and the lock-based Baseline branch) pay nothing.
 */
struct OpTimer
{
    std::uint64_t t0 = obs::nowNanos();

    OpTimer() = default;
    OpTimer(const OpTimer &) = delete;
    OpTimer &operator=(const OpTimer &) = delete;
    ~OpTimer()
    {
        obs::hist(obs::HistKind::CacheOp).record(obs::nowNanos() - t0);
    }
};

class ShardedCache final : public CacheIface
{
  public:
    ShardedCache(std::vector<std::unique_ptr<CacheIface>> shards)
        : shards_(std::move(shards))
    {
        // Fault-site names are consulted per operation; build them
        // once so the armed path does no allocation.
        faultSites_.reserve(shards_.size());
        for (std::size_t s = 0; s < shards_.size(); ++s)
            faultSites_.push_back(
                shardFaultSite(static_cast<std::uint32_t>(s)));
    }

    const char *branchName() const override
    {
        return shards_[0]->branchName();
    }

    const BranchCfg &branchCfg() const override
    {
        return shards_[0]->branchCfg();
    }

    GetResult
    get(std::uint32_t tid, const char *key, std::size_t nkey, char *out,
        std::size_t out_cap) override
    {
        OpTimer timer;
        return route(key, nkey).get(tid, key, nkey, out, out_cap);
    }

    void
    getMulti(std::uint32_t tid, MultiGetReq *reqs, std::size_t n) override
    {
        // The whole batch is one CacheOp sample: that matches the unit
        // of work a quiet-get run becomes (see net/conn.cc).
        OpTimer timer;
        // Group the batch so each touched shard is entered exactly once
        // (one pass through its sync domain), preserving per-shard
        // request order.
        std::vector<std::vector<MultiGetReq *>> byShard(shards_.size());
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t hv = hashKey(reqs[i].key, reqs[i].nkey);
            byShard[shardOfHash(hv, shardCountU())].push_back(&reqs[i]);
        }
        std::vector<MultiGetReq> batch;
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            if (byShard[s].empty())
                continue;
            enterShard(static_cast<std::uint32_t>(s));
            batch.assign(byShard[s].size(), MultiGetReq{});
            for (std::size_t i = 0; i < byShard[s].size(); ++i)
                batch[i] = *byShard[s][i];
            shards_[s]->getMulti(tid, batch.data(), batch.size());
            for (std::size_t i = 0; i < byShard[s].size(); ++i)
                byShard[s][i]->result = batch[i].result;
        }
    }

    bool
    pinnedGetSupported() const override
    {
        return shards_[0]->pinnedGetSupported();
    }

    PinnedValue
    getPinned(std::uint32_t tid, const char *key,
              std::size_t nkey) override
    {
        // The owning shard stamps itself into PinnedValue::owner, so
        // release() goes straight there — no routing override needed.
        OpTimer timer;
        return route(key, nkey).getPinned(tid, key, nkey);
    }

    OpStatus
    store(std::uint32_t tid, const char *key, std::size_t nkey,
          const char *val, std::size_t nbytes, StoreMode mode,
          std::uint64_t cas_expected) override
    {
        OpTimer timer;
        return route(key, nkey).store(tid, key, nkey, val, nbytes, mode,
                                      cas_expected);
    }

    OpStatus
    del(std::uint32_t tid, const char *key, std::size_t nkey) override
    {
        OpTimer timer;
        return route(key, nkey).del(tid, key, nkey);
    }

    OpStatus
    arith(std::uint32_t tid, const char *key, std::size_t nkey,
          std::uint64_t delta, bool incr, std::uint64_t &out_value) override
    {
        OpTimer timer;
        return route(key, nkey).arith(tid, key, nkey, delta, incr,
                                      out_value);
    }

    OpStatus
    touch(std::uint32_t tid, const char *key, std::size_t nkey,
          std::int64_t exptime) override
    {
        OpTimer timer;
        return route(key, nkey).touch(tid, key, nkey, exptime);
    }

    OpStatus
    concat(std::uint32_t tid, const char *key, std::size_t nkey,
           const char *extra, std::size_t nextra, bool append) override
    {
        OpTimer timer;
        return route(key, nkey).concat(tid, key, nkey, extra, nextra,
                                       append);
    }

    std::size_t
    statsText(std::uint32_t tid, char *out, std::size_t cap) override
    {
        // Re-render the aggregate from structured snapshots instead of
        // concatenating shard texts: consumers of the unsharded keys
        // (curr_items, get_hits, ...) must keep seeing one row each.
        GlobalStats g;
        ThreadStatsBlock t;
        std::vector<GlobalStats> perShard(shards_.size());
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            perShard[s] = shards_[s]->globalStats();
            addGlobal(g, perShard[s]);
            t.add(shards_[s]->threadStats());
        }
        std::size_t pos = 0;
        auto emit = [&](const char *name, std::uint64_t v) {
            if (pos >= cap)
                return;
            const int n = std::snprintf(out + pos, cap - pos,
                                        "STAT %s %llu\r\n", name,
                                        static_cast<unsigned long long>(v));
            if (n > 0)
                pos += static_cast<std::size_t>(n);
        };
        emit("curr_items", g.currItems);
        emit("total_items", g.totalItems);
        emit("bytes", g.currBytes);
        emit("evictions", g.evictions);
        emit("hash_expansions", g.hashExpansions);
        emit("slab_pages_moved", g.slabPagesMoved);
        emit("cas_badval", g.casBadval);
        emit("cmd_get", t.cmdGet);
        emit("cmd_set", t.cmdSet);
        emit("get_hits", t.getHits);
        emit("get_misses", t.getMisses);
        emit("shard_count", shards_.size());
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            const ThreadStatsBlock st = shards_[s]->threadStats();
            char name[64];
            std::snprintf(name, sizeof name, "shard%zu_get_hits", s);
            emit(name, st.getHits);
            std::snprintf(name, sizeof name, "shard%zu_get_misses", s);
            emit(name, st.getMisses);
            std::snprintf(name, sizeof name, "shard%zu_evictions", s);
            emit(name, perShard[s].evictions);
            std::snprintf(name, sizeof name, "shard%zu_curr_items", s);
            emit(name, perShard[s].currItems);
        }
        (void)tid;
        return pos;
    }

    void
    flushAll(std::uint32_t tid) override
    {
        for (auto &s : shards_)
            s->flushAll(tid);
    }

    GlobalStats
    globalStats() override
    {
        GlobalStats g;
        for (auto &s : shards_)
            addGlobal(g, s->globalStats());
        return g;
    }

    ThreadStatsBlock
    threadStats() override
    {
        ThreadStatsBlock t;
        for (auto &s : shards_)
            t.add(s->threadStats());
        return t;
    }

    std::vector<LockProfileRow>
    lockProfile() const override
    {
        std::vector<LockProfileRow> rows;
        for (std::size_t s = 0; s < shards_.size(); ++s) {
            for (LockProfileRow row : shards_[s]->lockProfile()) {
                row.name = "shard" + std::to_string(s) + ":" + row.name;
                rows.push_back(std::move(row));
            }
        }
        return rows;
    }

    std::uint64_t
    linkedItemCount() override
    {
        std::uint64_t n = 0;
        for (auto &s : shards_)
            n += s->linkedItemCount();
        return n;
    }

    std::uint32_t
    hashPowerNow() override
    {
        // Report the largest table across shards (the one that
        // expansion-related tests watch grow).
        std::uint32_t p = 0;
        for (auto &s : shards_)
            p = std::max(p, s->hashPowerNow());
        return p;
    }

    void
    quiesceMaintenance() override
    {
        for (auto &s : shards_)
            s->quiesceMaintenance();
    }

    void
    requestRebalance(std::uint32_t src_cls, std::uint32_t dst_cls) override
    {
        for (auto &s : shards_)
            s->requestRebalance(src_cls, dst_cls);
    }

    std::uint32_t shardCount() const override { return shardCountU(); }

    std::uint32_t
    shardOf(const char *key, std::size_t nkey) const override
    {
        return shardOfHash(hashKey(key, nkey), shardCountU());
    }

  private:
    std::uint32_t
    shardCountU() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }

    CacheIface &
    route(const char *key, std::size_t nkey)
    {
        const std::uint32_t s = shardOf(key, nkey);
        enterShard(s);
        return *shards_[s];
    }

    /**
     * Per-shard entry point: stamps the shard into the active tail
     * trace and consults the shard's fault site. Both are one relaxed
     * load when nothing is armed. A delayUs policy stalls here —
     * before the shard's transaction begins, the only place a traced
     * request may block (fault::maybeDelay must never run inside a
     * transaction).
     */
    void
    enterShard(std::uint32_t s)
    {
        obs::tail::noteShard(s);
        if (fault::enabled())
            fault::maybeDelay(
                fault::consultSlow(faultSites_[s].c_str()));
    }

    static void
    addGlobal(GlobalStats &into, const GlobalStats &from)
    {
        into.currItems += from.currItems;
        into.totalItems += from.totalItems;
        into.currBytes += from.currBytes;
        into.evictions += from.evictions;
        into.expiredUnfetched += from.expiredUnfetched;
        into.hashExpansions += from.hashExpansions;
        into.slabPagesMoved += from.slabPagesMoved;
        into.casBadval += from.casBadval;
        into.memLimitNear |= from.memLimitNear;
    }

    std::vector<std::unique_ptr<CacheIface>> shards_;
    /** faultSites_[s] == shardFaultSite(s), prebuilt. */
    std::vector<std::string> faultSites_;
};

} // namespace

std::unique_ptr<CacheIface>
makeShardedCache(const std::string &branch, const Settings &settings,
                 std::uint32_t worker_threads, std::uint32_t shards)
{
    if (shards == 0)
        return nullptr;
    if (shards == 1)
        return makeCache(branch, settings, worker_threads);

    std::vector<std::unique_ptr<CacheIface>> parts;
    parts.reserve(shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
        Settings per = settings;
        per.shardCount = shards;
        per.shardId = s;
        // Split the memory budget, but never below a handful of slab
        // pages — a shard with one page per class cannot rebalance.
        per.maxBytes = std::max(settings.maxBytes / shards,
                                settings.slabPageSize * 8);
        std::unique_ptr<CacheIface> shard =
            makeCache(branch, per, worker_threads);
        if (shard == nullptr)
            return nullptr;
        parts.push_back(std::move(shard));
    }
    return std::make_unique<ShardedCache>(std::move(parts));
}

} // namespace tmemc::mc
