/**
 * @file
 * Binary-protocol implementation.
 */

#include "mc/binary_protocol.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "mc/ctx.h"

namespace tmemc::mc
{

namespace
{

void
put16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 8);
    p[1] = static_cast<std::uint8_t>(v);
}

void
put32(std::uint8_t *p, std::uint32_t v)
{
    p[0] = static_cast<std::uint8_t>(v >> 24);
    p[1] = static_cast<std::uint8_t>(v >> 16);
    p[2] = static_cast<std::uint8_t>(v >> 8);
    p[3] = static_cast<std::uint8_t>(v);
}

void
put64(std::uint8_t *p, std::uint64_t v)
{
    put32(p, static_cast<std::uint32_t>(v >> 32));
    put32(p + 4, static_cast<std::uint32_t>(v));
}

std::uint16_t
get16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t
get32(const std::uint8_t *p)
{
    return (static_cast<std::uint32_t>(p[0]) << 24) |
           (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) |
           static_cast<std::uint32_t>(p[3]);
}

std::uint64_t
get64(const std::uint8_t *p)
{
    return (static_cast<std::uint64_t>(get32(p)) << 32) | get32(p + 4);
}

/** Build a response frame. */
std::string
binResponseFrame(BinOp op, BinStatus status, const std::string &key,
                 const std::string &extras, const std::string &value,
                 std::uint64_t cas, std::uint32_t opaque)
{
    BinHeader h;
    h.magic = static_cast<std::uint8_t>(BinMagic::Response);
    h.opcode = static_cast<std::uint8_t>(op);
    h.keyLength = static_cast<std::uint16_t>(key.size());
    h.extrasLength = static_cast<std::uint8_t>(extras.size());
    h.status = static_cast<std::uint16_t>(status);
    h.bodyLength = static_cast<std::uint32_t>(extras.size() + key.size() +
                                              value.size());
    h.cas = cas;
    h.opaque = opaque;
    std::string out(kBinHeaderSize, '\0');
    binEncodeHeader(h, reinterpret_cast<std::uint8_t *>(out.data()));
    out += extras;
    out += key;
    out += value;
    return out;
}

BinStatus
statusFor(OpStatus st)
{
    switch (st) {
      case OpStatus::Ok:
        return BinStatus::Ok;
      case OpStatus::Miss:
        return BinStatus::KeyNotFound;
      case OpStatus::NotStored:
        return BinStatus::NotStored;
      case OpStatus::Exists:
        return BinStatus::KeyExists;
      case OpStatus::OutOfMemory:
        return BinStatus::OutOfMemory;
      case OpStatus::BadValue:
        return BinStatus::NonNumeric;
    }
    return BinStatus::UnknownCommand;
}

} // namespace

bool
binIsQuietGet(const char *data, std::size_t len)
{
    if (len < 2)
        return false;
    const auto *p = reinterpret_cast<const std::uint8_t *>(data);
    if (p[0] != static_cast<std::uint8_t>(BinMagic::Request))
        return false;
    return p[1] == static_cast<std::uint8_t>(BinOp::GetQ) ||
           p[1] == static_cast<std::uint8_t>(BinOp::GetKQ);
}

void
binEncodeHeader(const BinHeader &h, std::uint8_t *out)
{
    out[0] = h.magic;
    out[1] = h.opcode;
    put16(out + 2, h.keyLength);
    out[4] = h.extrasLength;
    out[5] = h.dataType;
    put16(out + 6, h.status);
    put32(out + 8, h.bodyLength);
    put32(out + 12, h.opaque);
    put64(out + 16, h.cas);
}

bool
binDecodeHeader(const std::uint8_t *in, BinHeader &h)
{
    h.magic = in[0];
    if (h.magic != static_cast<std::uint8_t>(BinMagic::Request) &&
        h.magic != static_cast<std::uint8_t>(BinMagic::Response))
        return false;
    h.opcode = in[1];
    h.keyLength = get16(in + 2);
    h.extrasLength = in[4];
    h.dataType = in[5];
    h.status = get16(in + 6);
    h.bodyLength = get32(in + 8);
    h.opaque = get32(in + 12);
    h.cas = get64(in + 16);
    return true;
}

std::string
binRequest(BinOp op, const std::string &key, const std::string &value,
           const std::string &extras, std::uint64_t cas,
           std::uint32_t opaque)
{
    BinHeader h;
    h.magic = static_cast<std::uint8_t>(BinMagic::Request);
    h.opcode = static_cast<std::uint8_t>(op);
    h.keyLength = static_cast<std::uint16_t>(key.size());
    h.extrasLength = static_cast<std::uint8_t>(extras.size());
    h.bodyLength = static_cast<std::uint32_t>(extras.size() + key.size() +
                                              value.size());
    h.cas = cas;
    h.opaque = opaque;
    std::string out(kBinHeaderSize, '\0');
    binEncodeHeader(h, reinterpret_cast<std::uint8_t *>(out.data()));
    out += extras;
    out += key;
    out += value;
    return out;
}

std::string
binSetRequest(const std::string &key, const std::string &value,
              std::uint32_t flags, std::uint32_t expiry, BinOp op,
              std::uint64_t cas)
{
    std::string extras(8, '\0');
    put32(reinterpret_cast<std::uint8_t *>(extras.data()), flags);
    put32(reinterpret_cast<std::uint8_t *>(extras.data()) + 4, expiry);
    return binRequest(op, key, value, extras, cas);
}

std::string
binArithRequest(BinOp op, const std::string &key, std::uint64_t delta)
{
    // Extras: delta(8) initial(8) expiry(4).
    std::string extras(20, '\0');
    put64(reinterpret_cast<std::uint8_t *>(extras.data()), delta);
    return binRequest(op, key, "", extras);
}

std::size_t
binParseResponse(const std::string &wire, BinResponse &out)
{
    if (wire.size() < kBinHeaderSize)
        return 0;
    BinHeader h;
    if (!binDecodeHeader(
            reinterpret_cast<const std::uint8_t *>(wire.data()), h))
        return 0;
    if (wire.size() < kBinHeaderSize + h.bodyLength)
        return 0;
    if (static_cast<std::uint32_t>(h.extrasLength) + h.keyLength >
        h.bodyLength)
        return 0;  // Lying length fields.
    out.status = static_cast<BinStatus>(h.status);
    out.opcode = static_cast<BinOp>(h.opcode);
    out.cas = h.cas;
    out.opaque = h.opaque;
    const char *body = wire.data() + kBinHeaderSize;
    out.extras.assign(body, h.extrasLength);
    out.key.assign(body + h.extrasLength, h.keyLength);
    out.value.assign(body + h.extrasLength + h.keyLength,
                     h.bodyLength - h.extrasLength - h.keyLength);
    return kBinHeaderSize + h.bodyLength;
}

FrameResult
binaryTryFrame(const std::uint8_t *data, std::size_t len)
{
    FrameResult r;
    if (len == 0)
        return r;  // NeedMore.
    if (data[0] != static_cast<std::uint8_t>(BinMagic::Request)) {
        r.status = FrameStatus::Error;
        r.error = "bad magic";
        return r;
    }
    if (len < kBinHeaderSize)
        return r;  // NeedMore.
    BinHeader h;
    binDecodeHeader(data, h);
    if (h.bodyLength > kBinMaxBodyBytes) {
        r.status = FrameStatus::Error;
        r.error = "body too large";
        return r;
    }
    if (h.keyLength > kBinMaxKeyBytes ||
        static_cast<std::uint32_t>(h.extrasLength) + h.keyLength >
            h.bodyLength) {
        r.status = FrameStatus::Error;
        r.error = "inconsistent lengths";
        return r;
    }
    const std::size_t want = kBinHeaderSize + h.bodyLength;
    if (len < want)
        return r;  // NeedMore.
    r.status = FrameStatus::Ready;
    r.frameLen = want;
    return r;
}

std::string
binaryExecute(CacheIface &cache, std::uint32_t worker,
              const std::string &request)
{
    if (request.size() < kBinHeaderSize)
        return "";
    BinHeader h;
    if (!binDecodeHeader(
            reinterpret_cast<const std::uint8_t *>(request.data()), h) ||
        h.magic != static_cast<std::uint8_t>(BinMagic::Request)) {
        return binResponseFrame(BinOp::Noop, BinStatus::UnknownCommand,
                                "", "", "", 0, 0);
    }
    if (request.size() < kBinHeaderSize + h.bodyLength)
        return "";
    if (static_cast<std::uint32_t>(h.extrasLength) + h.keyLength >
        h.bodyLength) {
        // Length fields lie; reject rather than index out of bounds.
        return binResponseFrame(static_cast<BinOp>(h.opcode),
                                BinStatus::InvalidArguments, "", "", "",
                                0, h.opaque);
    }

    const char *body = request.data() + kBinHeaderSize;
    const std::string extras(body, h.extrasLength);
    const std::string key(body + h.extrasLength, h.keyLength);
    const char *value = body + h.extrasLength + h.keyLength;
    const std::size_t value_len =
        h.bodyLength - h.extrasLength - h.keyLength;
    const auto op = static_cast<BinOp>(h.opcode);

    switch (op) {
      case BinOp::GetQ:
      case BinOp::GetKQ: {
        // A run of consecutive quiet-get frames executes as one batch:
        // parse every complete quiet-get frame in the buffer, issue a
        // single getMulti (one visit per touched shard), then emit hit
        // frames only, in request order. Misses are silent per the
        // quiet-op contract.
        struct QGet
        {
            std::string key;
            BinOp op;
            std::uint32_t opaque;
        };
        std::vector<QGet> q;
        q.push_back({key, op, h.opaque});
        std::size_t pos = kBinHeaderSize + h.bodyLength;
        while (pos + kBinHeaderSize <= request.size()) {
            BinHeader nh;
            if (!binDecodeHeader(reinterpret_cast<const std::uint8_t *>(
                                     request.data() + pos),
                                 nh) ||
                nh.magic != static_cast<std::uint8_t>(BinMagic::Request))
                break;
            const auto nop = static_cast<BinOp>(nh.opcode);
            if (nop != BinOp::GetQ && nop != BinOp::GetKQ)
                break;
            if (pos + kBinHeaderSize + nh.bodyLength > request.size() ||
                static_cast<std::uint32_t>(nh.extrasLength) +
                        nh.keyLength >
                    nh.bodyLength)
                break;
            q.push_back({std::string(request.data() + pos +
                                         kBinHeaderSize + nh.extrasLength,
                                     nh.keyLength),
                         nop, nh.opaque});
            pos += kBinHeaderSize + nh.bodyLength;
        }
        std::vector<std::vector<char>> bufs(q.size());
        std::vector<CacheIface::MultiGetReq> reqs(q.size());
        for (std::size_t i = 0; i < q.size(); ++i) {
            bufs[i].resize(65536);
            reqs[i].key = q[i].key.data();
            reqs[i].nkey = q[i].key.size();
            reqs[i].out = bufs[i].data();
            reqs[i].outCap = bufs[i].size();
        }
        cache.getMulti(worker, reqs.data(), reqs.size());
        std::string out;
        const std::string flags(4, '\0');
        for (std::size_t i = 0; i < q.size(); ++i) {
            const auto &r = reqs[i].result;
            if (r.status != OpStatus::Ok)
                continue;
            out += binResponseFrame(
                q[i].op, BinStatus::Ok,
                q[i].op == BinOp::GetKQ ? q[i].key : "", flags,
                std::string(bufs[i].data(),
                            std::min(r.vlen, bufs[i].size())),
                r.casId, q[i].opaque);
        }
        return out;
      }

      case BinOp::Get:
      case BinOp::GetK: {
        std::string buf(65536, '\0');
        const auto r = cache.get(worker, key.data(), key.size(),
                                 buf.data(), buf.size());
        if (r.status != OpStatus::Ok) {
            return binResponseFrame(op, BinStatus::KeyNotFound,
                                    op == BinOp::GetK ? key : "", "", "",
                                    0, h.opaque);
        }
        std::string flags(4, '\0');  // Response extras: flags.
        buf.resize(std::min(r.vlen, buf.size()));
        return binResponseFrame(op, BinStatus::Ok,
                                op == BinOp::GetK ? key : "", flags, buf,
                                r.casId, h.opaque);
      }

      case BinOp::Set:
      case BinOp::Add:
      case BinOp::Replace: {
        if (h.extrasLength != 8 || key.empty()) {
            return binResponseFrame(op, BinStatus::InvalidArguments, "",
                                    "", "", 0, h.opaque);
        }
        StoreMode mode = StoreMode::Set;
        if (op == BinOp::Add)
            mode = StoreMode::Add;
        else if (op == BinOp::Replace)
            mode = StoreMode::Replace;
        if (h.cas != 0)
            mode = StoreMode::Cas;  // CAS rides on set, per protocol.
        const auto st = cache.store(worker, key.data(), key.size(), value,
                                    value_len, mode, h.cas);
        std::uint64_t cas = 0;
        if (st == OpStatus::Ok) {
            // Return the item's new CAS id, as memcached does.
            std::string tmp(1, '\0');
            const auto g = cache.get(worker, key.data(), key.size(),
                                     tmp.data(), tmp.size());
            cas = g.casId;
        }
        return binResponseFrame(op, statusFor(st), "", "", "", cas,
                                h.opaque);
      }

      case BinOp::Append:
      case BinOp::Prepend: {
        const auto st =
            cache.concat(worker, key.data(), key.size(), value,
                         value_len, op == BinOp::Append);
        return binResponseFrame(op, statusFor(st), "", "", "", 0,
                                h.opaque);
      }

      case BinOp::Delete: {
        const auto st = cache.del(worker, key.data(), key.size());
        return binResponseFrame(op, statusFor(st), "", "", "", 0,
                                h.opaque);
      }

      case BinOp::Increment:
      case BinOp::Decrement: {
        if (h.extrasLength != 20) {
            return binResponseFrame(op, BinStatus::InvalidArguments, "",
                                    "", "", 0, h.opaque);
        }
        const std::uint64_t delta = get64(
            reinterpret_cast<const std::uint8_t *>(extras.data()));
        std::uint64_t result = 0;
        const auto st =
            cache.arith(worker, key.data(), key.size(), delta,
                        op == BinOp::Increment, result);
        if (st != OpStatus::Ok) {
            return binResponseFrame(op, statusFor(st), "", "", "", 0,
                                    h.opaque);
        }
        std::string val(8, '\0');
        put64(reinterpret_cast<std::uint8_t *>(val.data()), result);
        return binResponseFrame(op, BinStatus::Ok, "", "", val, 0,
                                h.opaque);
      }

      case BinOp::Flush: {
        cache.flushAll(worker);
        return binResponseFrame(op, BinStatus::Ok, "", "", "", 0,
                                h.opaque);
      }

      case BinOp::Noop:
        return binResponseFrame(op, BinStatus::Ok, "", "", "", 0,
                                h.opaque);

      case BinOp::Version:
        return binResponseFrame(op, BinStatus::Ok, "", "",
                                worklistVersion(), 0, h.opaque);

      case BinOp::Touch: {
        if (h.extrasLength != 4) {
            return binResponseFrame(op, BinStatus::InvalidArguments, "",
                                    "", "", 0, h.opaque);
        }
        const std::uint32_t expiry = get32(
            reinterpret_cast<const std::uint8_t *>(extras.data()));
        const auto st = cache.touch(worker, key.data(), key.size(),
                                    static_cast<std::int64_t>(expiry));
        return binResponseFrame(op, statusFor(st), "", "", "", 0,
                                h.opaque);
      }

      case BinOp::Stat: {
        // One frame per stat row, terminated by an empty-key frame.
        std::vector<char> text(16384);
        const std::size_t n =
            cache.statsText(worker, text.data(), text.size());
        std::string out;
        std::size_t pos = 0;
        const std::string block(text.data(), n);
        while (pos < block.size()) {
            // Rows look like "STAT name value\r\n".
            const std::size_t eol = block.find("\r\n", pos);
            if (eol == std::string::npos)
                break;
            const std::string row = block.substr(pos, eol - pos);
            pos = eol + 2;
            const std::size_t sp1 = row.find(' ');
            const std::size_t sp2 = row.find(' ', sp1 + 1);
            if (sp1 == std::string::npos || sp2 == std::string::npos)
                continue;
            out += binResponseFrame(
                op, BinStatus::Ok, row.substr(sp1 + 1, sp2 - sp1 - 1),
                "", row.substr(sp2 + 1), 0, h.opaque);
        }
        out += binResponseFrame(op, BinStatus::Ok, "", "", "", 0,
                                h.opaque);
        return out;
      }
    }
    return binResponseFrame(op, BinStatus::UnknownCommand, "", "", "", 0,
                            h.opaque);
}

} // namespace tmemc::mc
