/**
 * @file
 * Runtime-dispatch facade over the branch instantiations of
 * CacheCore<Policy>, so benchmarks and examples can select a branch by
 * name ("Baseline", "IP-Callable", "IT-onCommit", ...) without
 * compile-time knowledge of the policy types.
 */

#ifndef TMEMC_MC_CACHE_IFACE_H
#define TMEMC_MC_CACHE_IFACE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mc/branch.h"
#include "mc/cache.h"
#include "mc/lockprof.h"
#include "mc/mcstats.h"
#include "mc/settings.h"

namespace tmemc::mc
{

/** Branch-erased cache handle. */
class CacheIface
{
  public:
    virtual ~CacheIface() = default;

    virtual const char *branchName() const = 0;
    virtual const BranchCfg &branchCfg() const = 0;

    struct GetResult
    {
        OpStatus status = OpStatus::Miss;
        std::size_t vlen = 0;
        std::uint64_t casId = 0;
    };

    virtual GetResult get(std::uint32_t tid, const char *key,
                          std::size_t nkey, char *out,
                          std::size_t out_cap) = 0;

    /** One key of a batched multi-get. */
    struct MultiGetReq
    {
        const char *key = nullptr;
        std::size_t nkey = 0;
        char *out = nullptr;
        std::size_t outCap = 0;
        GetResult result;
    };

    /**
     * Batched lookup: fill result for every request. The sharded cache
     * overrides this to visit each touched shard exactly once; the
     * default is a plain per-key loop.
     */
    virtual void
    getMulti(std::uint32_t tid, MultiGetReq *reqs, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i) {
            reqs[i].result = get(tid, reqs[i].key, reqs[i].nkey,
                                 reqs[i].out, reqs[i].outCap);
        }
    }
    /**
     * A zero-copy GET hit: the value bytes stay in the slab chunk,
     * kept alive by the item reference taken at lookup. On a hit the
     * caller must call release() exactly once, after the bytes have
     * been handed to the kernel (or abandoned). Misses carry no
     * reference; release() on them is a no-op.
     */
    struct PinnedValue
    {
        OpStatus status = OpStatus::Miss;
        const char *data = nullptr;
        std::size_t vlen = 0;
        std::uint64_t casId = 0;
        std::uint32_t tid = 0;
        void *handle = nullptr;       //!< Branch-internal item pointer.
        CacheIface *owner = nullptr;  //!< Cache to release against.

        void
        release()
        {
            if (owner != nullptr && handle != nullptr)
                owner->releasePinned(tid, handle);
            owner = nullptr;
            handle = nullptr;
        }
    };

    /**
     * True if this branch can serve zero-copy gets. False for the
     * TxSection (IT) branches — their item bytes are written
     * transactionally and must not be exposed to the kernel — and for
     * the fused-get branch, which has no reference counts.
     */
    virtual bool pinnedGetSupported() const { return false; }

    /**
     * GET without the value copy: a hit pins the item via its refcount
     * and returns a pointer into the slab. Default (branches without
     * support): always a miss-shaped result with status Miss.
     */
    virtual PinnedValue
    getPinned(std::uint32_t tid, const char *key, std::size_t nkey)
    {
        (void)tid;
        (void)key;
        (void)nkey;
        return {};
    }

    /** Drop a pinned reference (called via PinnedValue::release). */
    virtual void
    releasePinned(std::uint32_t tid, void *handle)
    {
        (void)tid;
        (void)handle;
    }

    virtual OpStatus store(std::uint32_t tid, const char *key,
                           std::size_t nkey, const char *val,
                           std::size_t nbytes,
                           StoreMode mode = StoreMode::Set,
                           std::uint64_t cas_expected = 0) = 0;
    virtual OpStatus del(std::uint32_t tid, const char *key,
                         std::size_t nkey) = 0;
    virtual OpStatus arith(std::uint32_t tid, const char *key,
                           std::size_t nkey, std::uint64_t delta,
                           bool incr, std::uint64_t &out_value) = 0;
    virtual OpStatus touch(std::uint32_t tid, const char *key,
                           std::size_t nkey, std::int64_t exptime) = 0;
    virtual OpStatus concat(std::uint32_t tid, const char *key,
                            std::size_t nkey, const char *extra,
                            std::size_t nextra, bool append) = 0;
    virtual std::size_t statsText(std::uint32_t tid, char *out,
                                  std::size_t cap) = 0;
    virtual void flushAll(std::uint32_t tid) = 0;

    virtual GlobalStats globalStats() = 0;
    virtual ThreadStatsBlock threadStats() = 0;
    virtual std::vector<LockProfileRow> lockProfile() const = 0;
    virtual std::uint64_t linkedItemCount() = 0;
    virtual std::uint32_t hashPowerNow() = 0;
    virtual void quiesceMaintenance() = 0;
    virtual void requestRebalance(std::uint32_t src_cls,
                                  std::uint32_t dst_cls) = 0;

    /** Number of independent shards behind this handle (1 = unsharded). */
    virtual std::uint32_t shardCount() const { return 1; }
    /** Which shard a key maps to (always 0 when unsharded). */
    virtual std::uint32_t shardOf(const char *key, std::size_t nkey) const
    {
        (void)key;
        (void)nkey;
        return 0;
    }
};

/**
 * Instantiate the cache for a named branch.
 * @param branch  One of the names from allBranchNames().
 * @param settings Cache tunables.
 * @param worker_threads Number of client threads that will drive it.
 * @return nullptr if the branch name is unknown.
 */
std::unique_ptr<CacheIface> makeCache(const std::string &branch,
                                      const Settings &settings,
                                      std::uint32_t worker_threads);

/**
 * Instantiate a cache partitioned into @p shards independent instances
 * of @p branch, each with its own synchronization domain (lock set or
 * TM context / orec stripe). Keys are routed by the hash.h digest.
 * With shards == 1 this is equivalent to makeCache().
 * @return nullptr if the branch name is unknown or shards == 0.
 */
std::unique_ptr<CacheIface> makeShardedCache(const std::string &branch,
                                             const Settings &settings,
                                             std::uint32_t worker_threads,
                                             std::uint32_t shards);

} // namespace tmemc::mc

#endif // TMEMC_MC_CACHE_IFACE_H
