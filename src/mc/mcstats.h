/**
 * @file
 * Cache statistics, split the way memcached 1.4.15 splits them: a set
 * of global counters behind the stats lock, plus per-thread counters
 * behind per-thread locks ("much effort has gone into moving these
 * counters into per-thread structures, some remain as global
 * variables").
 *
 * Fields are plain integers: how they are read and written (plain,
 * atomic, or transactional) is the branch's business, via its memory
 * context.
 */

#ifndef TMEMC_MC_MCSTATS_H
#define TMEMC_MC_MCSTATS_H

#include <cstdint>

namespace tmemc::mc
{

/** Global statistics (stats_lock domain). */
struct GlobalStats
{
    std::uint64_t currItems = 0;
    std::uint64_t totalItems = 0;
    std::uint64_t currBytes = 0;
    std::uint64_t evictions = 0;
    std::uint64_t expiredUnfetched = 0;
    std::uint64_t hashExpansions = 0;
    std::uint64_t slabPagesMoved = 0;
    std::uint64_t casBadval = 0;
    /**
     * Status flag nudged by the allocator when memory is nearly
     * exhausted. memcached keeps flags like this as volatiles that
     * stats-domain critical sections re-read; it is the unconditional
     * volatile access that makes stats transactions start serial
     * before the Max stage.
     */
    std::uint64_t memLimitNear = 0;
};

/** Per-thread statistics (per-thread lock domain). */
struct ThreadStatsBlock
{
    std::uint64_t cmdGet = 0;
    std::uint64_t cmdSet = 0;
    std::uint64_t getHits = 0;
    std::uint64_t getMisses = 0;
    std::uint64_t deleteHits = 0;
    std::uint64_t deleteMisses = 0;
    std::uint64_t incrHits = 0;
    std::uint64_t incrMisses = 0;
    std::uint64_t decrHits = 0;
    std::uint64_t decrMisses = 0;
    std::uint64_t casHits = 0;
    std::uint64_t casMisses = 0;
    std::uint64_t touchHits = 0;
    std::uint64_t touchMisses = 0;
    std::uint64_t bytesRead = 0;
    std::uint64_t bytesWritten = 0;

    void
    add(const ThreadStatsBlock &o)
    {
        cmdGet += o.cmdGet;
        cmdSet += o.cmdSet;
        getHits += o.getHits;
        getMisses += o.getMisses;
        deleteHits += o.deleteHits;
        deleteMisses += o.deleteMisses;
        incrHits += o.incrHits;
        incrMisses += o.incrMisses;
        decrHits += o.decrHits;
        decrMisses += o.decrMisses;
        casHits += o.casHits;
        casMisses += o.casMisses;
        touchHits += o.touchHits;
        touchMisses += o.touchMisses;
        bytesRead += o.bytesRead;
        bytesWritten += o.bytesWritten;
    }
};

} // namespace tmemc::mc

#endif // TMEMC_MC_MCSTATS_H
