/**
 * @file
 * Key hashing. memcached 1.4.15 uses Bob Jenkins' lookup3; any strong
 * 32-bit mix works for the study, so we use a MurmurHash3-style
 * finalizer over 8-byte blocks. Keys are always private memory when
 * hashed (request buffers), so no instrumentation is needed — matching
 * memcached, where hashing happens before any lock is taken.
 */

#ifndef TMEMC_MC_HASH_H
#define TMEMC_MC_HASH_H

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace tmemc::mc
{

/** 32-bit hash of a private key buffer. */
inline std::uint32_t
hashKey(const void *key, std::size_t nkey)
{
    const auto *p = static_cast<const unsigned char *>(key);
    std::uint64_t h = 0x9368e53c2f6af274ull ^ (nkey * 0xff51afd7ed558ccdull);
    while (nkey >= 8) {
        std::uint64_t k;
        std::memcpy(&k, p, 8);
        k *= 0xc6a4a7935bd1e995ull;
        k ^= k >> 47;
        h = (h ^ k) * 0xc6a4a7935bd1e995ull;
        p += 8;
        nkey -= 8;
    }
    std::uint64_t tail = 0;
    std::memcpy(&tail, p, nkey);
    h ^= tail;
    h *= 0xc6a4a7935bd1e995ull;
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 29;
    return static_cast<std::uint32_t>(h ^ (h >> 32));
}

} // namespace tmemc::mc

#endif // TMEMC_MC_HASH_H
