/**
 * @file
 * Serial "algorithm": every transaction runs serial-irrevocably under
 * the global write lock. Used as a correctness reference in tests and
 * as a debugging aid; the orchestration layer short-circuits all
 * instrumentation in serial mode, so these methods are unreachable.
 */

#include "common/logging.h"
#include "tm/algo.h"
#include "tm/runtime.h"

namespace tmemc::tm
{

namespace
{

class SerialAlgo : public Algo
{
  public:
    const char *name() const override { return "serial"; }

    void
    begin(Runtime &rt, TxDesc &d) override
    {
        panic("SerialAlgo::begin: serial mode bypasses the algorithm");
    }

    std::uint64_t
    loadWord(Runtime &rt, TxDesc &d, std::uintptr_t word_addr) override
    {
        panic("SerialAlgo::loadWord unreachable");
    }

    void
    storeWord(Runtime &rt, TxDesc &d, std::uintptr_t word_addr,
              std::uint64_t val, std::uint64_t mask) override
    {
        panic("SerialAlgo::storeWord unreachable");
    }

    std::uint64_t
    commit(Runtime &rt, TxDesc &d) override
    {
        panic("SerialAlgo::commit unreachable");
    }

    void
    rollback(Runtime &rt, TxDesc &d) override
    {
        panic("SerialAlgo::rollback unreachable");
    }

    bool isReadOnly(const TxDesc &d) const override { return false; }
};

SerialAlgo gAlgo;

} // namespace

Algo &
serialAlgo()
{
    return gAlgo;
}

Algo &
algoFor(AlgoKind kind)
{
    switch (kind) {
      case AlgoKind::GccEager:
        return gccEagerAlgo();
      case AlgoKind::Lazy:
        return lazyAlgo();
      case AlgoKind::NOrec:
        return norecAlgo();
      case AlgoKind::Serial:
        return serialAlgo();
      case AlgoKind::RA:
        return raAlgo();
    }
    return gccEagerAlgo();
}

} // namespace tmemc::tm
