/**
 * @file
 * The global readers/writer serialization lock, modelled on GCC
 * libitm's gtm_rwlock.
 *
 * Every speculative transaction acquires the lock in read mode at begin
 * and releases it at commit or abort; a transaction that must run
 * serial-irrevocably acquires it in write mode, excluding all
 * speculation. This is deliberately a single shared-counter lock: the
 * cache-line ping-ponging it causes is the bottleneck the paper
 * removes in Figure 10 ("NoLock" runtime configuration).
 */

#ifndef TMEMC_TM_SERIAL_LOCK_H
#define TMEMC_TM_SERIAL_LOCK_H

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/backoff.h"
#include "common/compiler.h"
#include "common/padded.h"

namespace tmemc::tm
{

/**
 * Reader-preference readers/writer spin lock with a one-shot upgrade
 * path for in-flight serialization.
 */
class SerialLock
{
  public:
    /** Acquire in read mode (speculative transaction begin). */
    void
    readLock()
    {
        for (;;) {
            // Bounded spin, then yield: with more software threads
            // than cores, pure spinning convoys behind a descheduled
            // serial transaction.
            for (int spins = 0;
                 writer_.load(std::memory_order_acquire); ++spins) {
                if (spins < 64)
                    cpuRelax();
                else
                    std::this_thread::yield();
            }
            readers_.fetch_add(1, std::memory_order_acquire);
            if (!writer_.load(std::memory_order_acquire))
                return;
            // A writer raced in; back out and wait.
            readers_.fetch_sub(1, std::memory_order_release);
        }
    }

    /** Release read mode. */
    void
    readUnlock()
    {
        readers_.fetch_sub(1, std::memory_order_release);
    }

    /** Acquire in write mode (serial-irrevocable transaction). */
    void
    writeLock()
    {
        std::uint32_t expected = 0;
        while (!writer_.compare_exchange_weak(expected, 1,
                                              std::memory_order_acquire)) {
            expected = 0;
            cpuRelax();
        }
        while (readers_.load(std::memory_order_acquire) != 0)
            std::this_thread::yield();
    }

    /** Release write mode. */
    void
    writeUnlock()
    {
        writer_.store(0, std::memory_order_release);
    }

    /**
     * Try to upgrade the calling reader to the writer. Fails if
     * another writer (or upgrader) already claimed the lock; the
     * caller must then abort and restart in serial mode. On success
     * the caller holds write mode and has dropped its read count.
     */
    bool
    tryUpgrade()
    {
        std::uint32_t expected = 0;
        if (!writer_.compare_exchange_strong(expected, 1,
                                             std::memory_order_acquire))
            return false;
        // Drop our own read hold, then wait for the other readers.
        readers_.fetch_sub(1, std::memory_order_release);
        while (readers_.load(std::memory_order_acquire) != 0)
            std::this_thread::yield();
        return true;
    }

    /** True while some transaction holds write mode. */
    bool
    writeHeld() const
    {
        return writer_.load(std::memory_order_acquire) != 0;
    }

  private:
    // atom-protocol: rw-lock
    alignas(cachelineBytes) std::atomic<std::uint32_t> writer_{0};
    // atom-protocol: rw-lock
    alignas(cachelineBytes) std::atomic<std::uint32_t> readers_{0};
};

} // namespace tmemc::tm

#endif // TMEMC_TM_SERIAL_LOCK_H
