/**
 * @file
 * Static transaction attributes and runtime configuration.
 *
 * These types model the static information the Draft C++ TM
 * Specification conveys through keywords and annotations:
 *
 *  - TxnKind::Atomic / TxnKind::Relaxed correspond to
 *    __transaction_atomic and __transaction_relaxed.
 *  - TxnAttr::startsSerial models the compiler's static determination
 *    that every code path through a relaxed transaction performs an
 *    unsafe operation, so the transaction must begin in
 *    serial-irrevocable mode ("Start Serial" in the paper's tables).
 *  - FnAttr models the transaction_safe / transaction_callable /
 *    transaction_pure function annotations plus the unannotated case.
 *
 * RuntimeCfg selects the pieces of the TM runtime the paper varies in
 * Section 4: the STM algorithm, the contention manager, and whether the
 * global readers/writer serialization lock exists at all.
 */

#ifndef TMEMC_TM_ATTR_H
#define TMEMC_TM_ATTR_H

#include <cstdint>

namespace tmemc::tm
{

/** Transaction kind per the Draft C++ TM Specification. */
enum class TxnKind : std::uint8_t
{
    /**
     * Statically checked to contain no unsafe operations; guaranteed
     * never to serialize for safety reasons.
     */
    Atomic,
    /**
     * May perform unsafe operations (I/O, volatiles, unannotated
     * calls); becomes serial-irrevocable when it encounters one.
     */
    Relaxed,
};

/** Why a transaction ran (or finished) in serial-irrevocable mode. */
enum class SerialCause : std::uint8_t
{
    None,      //!< Never serialized.
    Start,     //!< Unsafe on every path: began in serial mode.
    InFlight,  //!< Hit an unsafe operation mid-flight and switched.
    Abort,     //!< Serialized by the contention manager for progress.
};

/**
 * Static description of a transaction site (one __transaction_* block
 * in the source). Instances are expected to have static storage
 * duration; the runtime keys per-site profiling off their addresses.
 */
struct TxnAttr
{
    /** Human-readable site name (file:function style). */
    const char *name = "anonymous";
    /** Atomic or relaxed. */
    TxnKind kind = TxnKind::Atomic;
    /**
     * True when the "compiler" (our branch configuration) determined
     * that every path performs an unsafe operation, so speculation is
     * pointless and the transaction begins serial.
     */
    bool startsSerial = false;
    /**
     * True when the site is expected to perform no transactional
     * writes (a GET-path copy, a refcount read). The runtime may start
     * such transactions on the invisible-reader fast path: loads are
     * sequence-validated against the domain clock, no read set is
     * kept, and commit is O(1). The hint is advisory — a write (or any
     * operation needing commit/abort machinery) promotes the attempt
     * to the full path and re-executes.
     */
    bool readOnlyHint = false;
};

/** Function annotations from the specification (+ GCC's extension). */
enum class FnAttr : std::uint8_t
{
    Unannotated,  //!< No annotation; callable only if safety inferred.
    Safe,         //!< transaction_safe: statically free of unsafe ops.
    Callable,     //!< transaction_callable: instrumented, may be unsafe.
    Pure,         //!< transaction_pure: uninstrumented, trusted.
};

/** Selectable STM algorithms (paper Section 4 / Figure 11). */
enum class AlgoKind : std::uint8_t
{
    GccEager,  //!< GCC default: direct update, eager orec locking.
    Lazy,      //!< Same orec table, buffered update, commit-time locks.
    NOrec,     //!< Value-based validation on a global seqlock.
    Serial,    //!< Always serial-irrevocable (debugging / reference).
    /**
     * Release-acquire variant of Lazy (Dalvandi & Dongol): acquire
     * loads against orecs and the domain clock, release stores on
     * commit, and no memory fences anywhere outside the serial-mode
     * fallback. Load validation reads the data word itself with
     * acquire ordering and re-reads the orec, instead of the fence +
     * relaxed re-read idiom (the data load's acquire is what orders
     * the validating orec re-read after it).
     */
    RA,
};

/** Printable name for @p kind (metrics and tail-trace labels). */
inline const char *
algoKindName(AlgoKind kind)
{
    switch (kind) {
      case AlgoKind::GccEager:
        return "gcc-eager";
      case AlgoKind::Lazy:
        return "lazy";
      case AlgoKind::NOrec:
        return "norec";
      case AlgoKind::Serial:
        return "serial";
      case AlgoKind::RA:
        return "ra";
    }
    return "?";
}

/** Selectable contention managers (paper Figure 11). */
enum class CmKind : std::uint8_t
{
    SerialAfterN,  //!< GCC default: serialize after N consecutive aborts.
    NoCM,          //!< Retry immediately, forever.
    Backoff,       //!< Randomized exponential backoff on abort.
    Hourglass,     //!< Starving txn blocks new txns until it commits.
};

/** Runtime configuration for the TM library. */
struct RuntimeCfg
{
    AlgoKind algo = AlgoKind::GccEager;
    CmKind cm = CmKind::SerialAfterN;
    /** Consecutive aborts before SerialAfterN serializes (GCC: 100). */
    std::uint32_t serialAfterAborts = 100;
    /** Consecutive aborts before Hourglass turns toxic (paper: 128). */
    std::uint32_t hourglassThreshold = 128;
    /**
     * Whether the global readers/writer serialization lock exists.
     * GCC ships with it; the paper's Figure 10 removes it once no
     * relaxed transaction remains. With it removed, irrevocability is
     * impossible and any unsafe operation is a fatal error.
     */
    bool useSerialLock = true;
    /**
     * Whether calls to Unannotated functions from relaxed transactions
     * are treated as safe because the "compiler" saw their bodies.
     * GCC infers safety aggressively, which is why the paper found no
     * performance difference from the callable annotation; setting
     * this to false models a conservative compiler (ablation study).
     */
    bool inferCallableSafety = true;
    /** log2 of the ownership-record table size. */
    std::uint32_t orecTableBits = 18;
    /**
     * Whether sites hinted TxnAttr::readOnlyHint begin on the
     * invisible-reader fast path (no orec writes, no read set, O(1)
     * commit). Off reverts every transaction to the full path — the
     * ablation knob bench_ro_tx measures.
     */
    bool roFastPath = true;
};

} // namespace tmemc::tm

#endif // TMEMC_TM_ATTR_H
