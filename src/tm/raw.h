/**
 * @file
 * Race-tolerant raw word access and word/mask arithmetic.
 *
 * The direct-update algorithm writes program memory in place while
 * concurrent transactions may be reading it; doing that with plain
 * loads/stores would be a data race in the C++ memory model. All raw
 * memory touched by the TM instrumentation therefore goes through the
 * relaxed atomic accessors below (this is exactly what libitm does).
 *
 * The word/mask helpers convert arbitrary byte ranges into aligned
 * 64-bit word accesses with byte-enable masks, which is the granularity
 * at which every algorithm in src/tm operates.
 *
 * Annotation contract (read by tools/tmlint — see common/compiler.h):
 *
 *  - wordBase / wordOffset / byteMask / maskMerge are TM_PURE in the
 *    strict sense: pure arithmetic on values, no memory access at all.
 *  - rawLoad / rawStore are ALSO annotated TM_PURE, but they are the
 *    deliberate escape hatch of this header: they touch shared memory
 *    without a TxDesc. They exist solely so the TM runtime itself (the
 *    algorithms, the serial fast path, the redo/undo logs) can
 *    implement the instrumentation — the library analogue of libitm's
 *    own internal accesses, which GCC's checker never sees either.
 *    Application code under src/mc and src/net must never call them
 *    from a transaction body; tmlint flags rawLoad/rawStore calls in
 *    checked regions outside the trusted src/tm runtime (rule TM1),
 *    annotation or not, precisely because they bypass instrumentation.
 */

#ifndef TMEMC_TM_RAW_H
#define TMEMC_TM_RAW_H

#include <cstdint>
#include <cstring>

#include "common/compiler.h"

namespace tmemc::tm
{

/** TM access granularity in bytes. */
constexpr std::size_t wordBytes = 8;

/** Align an address down to its containing TM word. */
TM_PURE TMEMC_ALWAYS_INLINE std::uintptr_t
wordBase(const void *addr)
{
    return reinterpret_cast<std::uintptr_t>(addr) & ~(wordBytes - 1);
}

/** Byte offset of an address within its TM word. */
TM_PURE TMEMC_ALWAYS_INLINE std::size_t
wordOffset(const void *addr)
{
    return reinterpret_cast<std::uintptr_t>(addr) & (wordBytes - 1);
}

/**
 * Byte-enable mask covering @p len bytes starting at byte @p off of a
 * word. Each enabled byte contributes 0xff to the mask.
 * @pre off + len <= wordBytes.
 */
TM_PURE TMEMC_ALWAYS_INLINE std::uint64_t
byteMask(std::size_t off, std::size_t len)
{
    if (len >= wordBytes)
        return ~0ull;
    const std::uint64_t ones = (1ull << (8 * len)) - 1;
    return ones << (8 * off);
}

/** Merge masked bytes of @p val over @p base. */
TM_PURE TMEMC_ALWAYS_INLINE std::uint64_t
maskMerge(std::uint64_t base, std::uint64_t val, std::uint64_t mask)
{
    return (base & ~mask) | (val & mask);
}

/** Relaxed atomic load of an aligned 64-bit word. Runtime-internal
 *  escape hatch: bypasses instrumentation (see header comment). */
TM_PURE TMEMC_ALWAYS_INLINE std::uint64_t
rawLoad(const void *word_addr)
{
    return __atomic_load_n(static_cast<const std::uint64_t *>(word_addr),
                           __ATOMIC_RELAXED);
}

/**
 * Acquire atomic load of an aligned 64-bit word. Runtime-internal
 * escape hatch like rawLoad, for the fence-free validation idiom
 * (tm/algo_ra.cc): an acquire data load cannot be reordered with the
 * orec re-read that follows it, which is what makes the double-read
 * bracket sound without a standalone acquire fence. A relaxed data
 * load would NOT be held in place by an acquire re-read of the orec —
 * acquire only orders *later* accesses after itself.
 */
TM_PURE TMEMC_ALWAYS_INLINE std::uint64_t
rawLoadAcquire(const void *word_addr)
{
    return __atomic_load_n(static_cast<const std::uint64_t *>(word_addr),
                           __ATOMIC_ACQUIRE);
}

/** Relaxed atomic store of an aligned 64-bit word. Runtime-internal
 *  escape hatch: bypasses instrumentation (see header comment). */
TM_PURE TMEMC_ALWAYS_INLINE void
rawStore(void *word_addr, std::uint64_t val)
{
    __atomic_store_n(static_cast<std::uint64_t *>(word_addr), val,
                     __ATOMIC_RELAXED);
}

} // namespace tmemc::tm

#endif // TMEMC_TM_RAW_H
