/**
 * @file
 * Release-acquire TM: the Lazy algorithm's structure (redo log,
 * commit-time orec locking) rebuilt on pure release-acquire atomics,
 * after "Implementing and Verifying Release-Acquire Transactional
 * Memory" (Dalvandi & Dongol, PAPERS.md).
 *
 * What changes relative to Lazy:
 *
 *  - No std::atomic_thread_fence anywhere. Load validation makes the
 *    DATA load itself an acquire load (rawLoadAcquire) and re-reads
 *    the orec afterwards, instead of Lazy's raw load + fence(acquire)
 *    + relaxed re-read. The ordering obligations are split across the
 *    three loads: the first orec acquire load pairs with the
 *    committing writer's release store (data written before that
 *    version became visible is visible to us) and keeps the data load
 *    from hoisting above it; the data load's own acquire keeps the
 *    validating orec re-read from sinking above *it* (an acquire on
 *    the orec re-read alone would not — acquire only orders LATER
 *    accesses after itself, so a relaxed data load could be reordered
 *    past it by the compiler or by ARM/POWER hardware and observe a
 *    committer's store from after both orec reads). If both orec
 *    loads then return the same unlocked word, the data word read
 *    between them belongs to that (single, consistent) version.
 *  - The domain clock advances with a RELEASE fetch_add and is read
 *    with ACQUIRE loads — the release/acquire pair on the clock is
 *    only used for snapshot ordering (startTime monotonicity);
 *    data visibility rides entirely on the orec release/acquire
 *    pairs, which is exactly the RA-TM publication structure.
 *  - Commit-time orec locking uses an ACQUIRE compare-exchange: the
 *    lock word carries no payload, so no release is needed on
 *    acquisition; the acquire pairs with the previous owner's release
 *    so the stripe's prior data writes are visible before we merge
 *    over them.
 *
 * The read-set validation helpers in algo_orec_common.h are already
 * fence-free (acquire loads only) and are reused unchanged.
 */

#include <atomic>

#include "tm/algo_orec_common.h"

namespace tmemc::tm
{

namespace
{

class RaAlgo : public Algo
{
  public:
    const char *name() const override { return "ra"; }

    void
    begin(Runtime &rt, TxDesc &d) override
    {
        // Acquire: synchronizes with every committer's release
        // fetch_add, so startTime is a real lower bound on the
        // versions this attempt may accept without extension.
        d.startTime = d.dom().clock.load(std::memory_order_acquire);
        d.publishStart(d.startTime);
    }

    bool
    beginRO(Runtime &rt, TxDesc &d) override
    {
        begin(rt, d);
        return true;
    }

    std::uint64_t
    loadWordRO(Runtime &rt, TxDesc &d, std::uintptr_t word_addr) override
    {
        // Invisible reader against the release-ordered commit clock:
        // with no read set, a version newer than startTime cannot be
        // extended past, so it aborts (the full path retries there).
        OrecWord &o = d.dom().orecs().forWord(word_addr);
        for (;;) {
            const std::uint64_t w1 = o.load(std::memory_order_acquire);
            const OrecSnapshot s1{w1};
            if (s1.locked())
                throw TxAbort{};
            // Acquire data load: holds the validating orec re-read
            // below after the data read (see file header).
            const std::uint64_t mem =
                rawLoadAcquire(reinterpret_cast<void *>(word_addr));
            if (o.load(std::memory_order_acquire) != w1)
                continue;
            if (s1.version() > d.startTime)
                throw TxAbort{};
            return mem;
        }
    }

    std::uint64_t
    loadWord(Runtime &rt, TxDesc &d, std::uintptr_t word_addr) override
    {
        std::uint64_t buf_val = 0;
        std::uint64_t buf_mask = 0;
        const bool buffered = d.redoLog.lookup(word_addr, buf_val, buf_mask);
        if (buffered && buf_mask == ~std::uint64_t{0})
            return buf_val;  // Fully covered by our own writes.

        OrecWord &o = d.dom().orecs().forWord(word_addr);
        for (;;) {
            const std::uint64_t w1 = o.load(std::memory_order_acquire);
            const OrecSnapshot s1{w1};
            if (s1.locked())
                throw TxAbort{};  // A committer owns the stripe.
            // Acquire data load keeps the validating re-read below
            // ordered after it; equal unlocked orec words then
            // bracket the data read inside one stripe version, with
            // no standalone fence (see file header).
            const std::uint64_t mem =
                rawLoadAcquire(reinterpret_cast<void *>(word_addr));
            const std::uint64_t w2 = o.load(std::memory_order_acquire);
            if (w1 != w2)
                continue;
            if (s1.version() > d.startTime && !extendStartTime(rt, d))
                throw TxAbort{};
            d.readSet.push_back({&o, w1});
            return buffered ? maskMerge(mem, buf_val, buf_mask) : mem;
        }
    }

    void
    storeWord(Runtime &rt, TxDesc &d, std::uintptr_t word_addr,
              std::uint64_t val, std::uint64_t mask) override
    {
        d.redoLog.insert(word_addr, val, mask);
    }

    std::uint64_t
    commit(Runtime &rt, TxDesc &d) override
    {
        if (d.redoLog.empty()) {
            d.clearSets();
            return 0;
        }
        // Phase 1: lock every orec covering the write set. Acquire on
        // the CAS pairs with the previous releaser of the stripe;
        // idempotent across words hashing to one orec.
        for (const RedoEntry &e : d.redoLog.entries()) {
            OrecWord &o = d.dom().orecs().forWord(e.wordAddr);
            std::uint64_t w = o.load(std::memory_order_acquire);
            const OrecSnapshot snap{w};
            if (snap.locked()) {
                if (snap.owner() == &d)
                    continue;
                throw TxAbort{};
            }
            if (snap.version() > d.startTime) {
                if (!extendStartTime(rt, d))
                    throw TxAbort{};
                w = o.load(std::memory_order_acquire);
                const OrecSnapshot again{w};
                if (again.locked() || again.version() > d.startTime)
                    throw TxAbort{};
            }
            if (!o.compare_exchange_strong(w, orecLockWord(&d),
                                           std::memory_order_acquire))
                throw TxAbort{};
            d.writeLocks.push_back({&o, w});
        }
        // Phase 2: validate reads, apply the redo log, then release
        // each orec with the new version. The release stores are what
        // publish the data words to future acquire-loading readers;
        // the clock's release fetch_add only orders snapshots.
        const std::uint64_t end =
            d.dom().clock.fetch_add(1, std::memory_order_release) + 1;
        if (end != d.startTime + 1 && !validateReadSet(d))
            throw TxAbort{};
        for (const RedoEntry &e : d.redoLog.entries()) {
            void *p = reinterpret_cast<void *>(e.wordAddr);
            rawStore(p, maskMerge(rawLoad(p), e.value, e.mask));
        }
        for (const LockEntry &le : d.writeLocks) {
            le.orec->store(orecVersionWord(end),
                           std::memory_order_release);
        }
        d.clearSets();
        return end;
    }

    void
    rollback(Runtime &rt, TxDesc &d) override
    {
        // Write-back design: no in-place writes before phase 2, and
        // phase 2 cannot fail, so rollback only releases commit locks.
        orecRollback(rt, d);
    }

    bool
    isReadOnly(const TxDesc &d) const override
    {
        return d.redoLog.empty();
    }
};

RaAlgo gAlgo;

} // namespace

Algo &
raAlgo()
{
    return gAlgo;
}

} // namespace tmemc::tm
