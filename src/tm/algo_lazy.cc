/**
 * @file
 * The "Lazy" algorithm from the paper's Section 4: it "uses the same
 * lock table as the default GCC algorithm, but buffers updates and
 * acquires locks at commit time".
 *
 * Byte-masked stores accumulate in a redo log; loads must merge the
 * log over memory (the costly byte-to-word logging the paper calls out
 * for memcpy-heavy workloads). Commit acquires orecs for the write
 * set, validates the read set, applies the log, and releases.
 */

#include <atomic>

#include "tm/algo_orec_common.h"

namespace tmemc::tm
{

namespace
{

class LazyAlgo : public Algo
{
  public:
    const char *name() const override { return "lazy"; }

    void
    begin(Runtime &rt, TxDesc &d) override
    {
        d.startTime = d.dom().clock.load(std::memory_order_acquire);
        d.publishStart(d.startTime);
    }

    bool
    beginRO(Runtime &rt, TxDesc &d) override
    {
        begin(rt, d);
        return true;
    }

    std::uint64_t
    loadWordRO(Runtime &rt, TxDesc &d, std::uintptr_t word_addr) override
    {
        // Same invisible-reader protocol as GccEager: with an empty
        // redo log there is nothing to merge, and with no read set a
        // version newer than startTime cannot be extended past.
        OrecWord &o = d.dom().orecs().forWord(word_addr);
        for (;;) {
            const std::uint64_t w1 = o.load(std::memory_order_acquire);
            const OrecSnapshot s1{w1};
            if (s1.locked())
                throw TxAbort{};
            const std::uint64_t mem =
                rawLoad(reinterpret_cast<void *>(word_addr));
            std::atomic_thread_fence(std::memory_order_acquire);
            // atom-allow: relaxed re-read ordered by the fence above
            if (o.load(std::memory_order_relaxed) != w1)
                continue;
            if (s1.version() > d.startTime)
                throw TxAbort{};
            return mem;
        }
    }

    std::uint64_t
    loadWord(Runtime &rt, TxDesc &d, std::uintptr_t word_addr) override
    {
        std::uint64_t buf_val = 0;
        std::uint64_t buf_mask = 0;
        const bool buffered = d.redoLog.lookup(word_addr, buf_val, buf_mask);
        if (buffered && buf_mask == ~std::uint64_t{0})
            return buf_val;  // Fully covered by our own writes.

        OrecWord &o = d.dom().orecs().forWord(word_addr);
        for (;;) {
            const std::uint64_t w1 = o.load(std::memory_order_acquire);
            const OrecSnapshot s1{w1};
            if (s1.locked())
                throw TxAbort{};  // A committer owns the stripe.
            const std::uint64_t mem =
                rawLoad(reinterpret_cast<void *>(word_addr));
            std::atomic_thread_fence(std::memory_order_acquire);
            // atom-allow: relaxed re-read ordered by the fence above
            const std::uint64_t w2 = o.load(std::memory_order_relaxed);
            if (w1 != w2)
                continue;
            if (s1.version() > d.startTime && !extendStartTime(rt, d))
                throw TxAbort{};
            d.readSet.push_back({&o, w1});
            return buffered ? maskMerge(mem, buf_val, buf_mask) : mem;
        }
    }

    void
    storeWord(Runtime &rt, TxDesc &d, std::uintptr_t word_addr,
              std::uint64_t val, std::uint64_t mask) override
    {
        d.redoLog.insert(word_addr, val, mask);
    }

    std::uint64_t
    commit(Runtime &rt, TxDesc &d) override
    {
        if (d.redoLog.empty()) {
            d.clearSets();
            return 0;
        }
        // Phase 1: lock every orec covering the write set. Multiple
        // words can hash to one orec; the locked-by-us check makes the
        // acquisition idempotent.
        for (const RedoEntry &e : d.redoLog.entries()) {
            OrecWord &o = d.dom().orecs().forWord(e.wordAddr);
            std::uint64_t w = o.load(std::memory_order_acquire);
            const OrecSnapshot snap{w};
            if (snap.locked()) {
                if (snap.owner() == &d)
                    continue;
                throw TxAbort{};
            }
            if (snap.version() > d.startTime) {
                if (!extendStartTime(rt, d))
                    throw TxAbort{};
                w = o.load(std::memory_order_acquire);
                const OrecSnapshot again{w};
                if (again.locked() || again.version() > d.startTime)
                    throw TxAbort{};
            }
            if (!o.compare_exchange_strong(w, orecLockWord(&d),
                                           std::memory_order_acq_rel))
                throw TxAbort{};
            d.writeLocks.push_back({&o, w});
        }
        // Phase 2: validate reads, then make the writes visible.
        const std::uint64_t end =
            d.dom().clock.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (end != d.startTime + 1 && !validateReadSet(d))
            throw TxAbort{};
        for (const RedoEntry &e : d.redoLog.entries()) {
            void *p = reinterpret_cast<void *>(e.wordAddr);
            rawStore(p, maskMerge(rawLoad(p), e.value, e.mask));
        }
        for (const LockEntry &le : d.writeLocks) {
            le.orec->store(orecVersionWord(end),
                           std::memory_order_release);
        }
        d.clearSets();
        return end;
    }

    void
    rollback(Runtime &rt, TxDesc &d) override
    {
        // No in-place writes before phase 2, and phase 2 cannot fail,
        // so rollback only releases any commit-time locks.
        orecRollback(rt, d);
    }

    bool
    isReadOnly(const TxDesc &d) const override
    {
        return d.redoLog.empty();
    }
};

LazyAlgo gAlgo;

} // namespace

Algo &
lazyAlgo()
{
    return gAlgo;
}

} // namespace tmemc::tm
