/**
 * @file
 * NOrec (Dalessandro, Spear & Scott, PPoPP 2010): no ownership
 * records; a single global sequence lock serializes writer commits and
 * readers validate by value.
 *
 * The paper finds that in memcached "the frequency of small writer
 * transactions induced a bottleneck on internal NOrec metadata" — that
 * metadata is the single seqlock below.
 */

#include <atomic>

#include "tm/algo.h"
#include "tm/runtime.h"

#include "common/backoff.h"

namespace tmemc::tm
{

namespace
{

class NOrecAlgo : public Algo
{
  public:
    const char *name() const override { return "norec"; }

    void
    begin(Runtime &rt, TxDesc &d) override
    {
        for (;;) {
            const std::uint64_t s =
                d.dom().norecSeq.load(std::memory_order_acquire);
            if ((s & 1) == 0) {
                d.norecSnapshot = s;
                d.publishStart(s);
                return;
            }
            cpuRelax();
        }
    }

    bool
    beginRO(Runtime &rt, TxDesc &d) override
    {
        begin(rt, d);
        return true;
    }

    std::uint64_t
    loadWordRO(Runtime &rt, TxDesc &d, std::uintptr_t word_addr) override
    {
        // Invisible reader: any writer commit since the begin snapshot
        // dooms the attempt — there is no value read set to revalidate
        // against, so the seqlock check is the whole protocol.
        const std::uint64_t mem =
            rawLoad(reinterpret_cast<void *>(word_addr));
        std::atomic_thread_fence(std::memory_order_acquire);
        // atom-allow: relaxed re-read ordered by the fence above
        if (d.dom().norecSeq.load(std::memory_order_relaxed) !=
            d.norecSnapshot)
            throw TxAbort{};
        return mem;
    }

    std::uint64_t
    loadWord(Runtime &rt, TxDesc &d, std::uintptr_t word_addr) override
    {
        std::uint64_t buf_val = 0;
        std::uint64_t buf_mask = 0;
        const bool buffered = d.redoLog.lookup(word_addr, buf_val, buf_mask);
        if (buffered && buf_mask == ~std::uint64_t{0})
            return buf_val;

        std::uint64_t mem = rawLoad(reinterpret_cast<void *>(word_addr));
        std::atomic_thread_fence(std::memory_order_acquire);
        // atom-allow: relaxed re-read ordered by the fence above
        while (d.dom().norecSeq.load(std::memory_order_relaxed) !=
               d.norecSnapshot) {
            d.norecSnapshot = validate(rt, d);
            mem = rawLoad(reinterpret_cast<void *>(word_addr));
            std::atomic_thread_fence(std::memory_order_acquire);
        }
        d.valueReads.push_back({word_addr, mem});
        return buffered ? maskMerge(mem, buf_val, buf_mask) : mem;
    }

    void
    storeWord(Runtime &rt, TxDesc &d, std::uintptr_t word_addr,
              std::uint64_t val, std::uint64_t mask) override
    {
        d.redoLog.insert(word_addr, val, mask);
    }

    std::uint64_t
    commit(Runtime &rt, TxDesc &d) override
    {
        if (d.redoLog.empty()) {
            // Read-only: the last load re-validated against the
            // snapshot, so the read set is consistent as of it.
            d.clearSets();
            return 0;
        }
        for (;;) {
            std::uint64_t s = d.norecSnapshot;
            if (d.dom().norecSeq.compare_exchange_strong(
                    s, s + 1, std::memory_order_acquire))
                break;
            d.norecSnapshot = validate(rt, d);
        }
        for (const RedoEntry &e : d.redoLog.entries()) {
            void *p = reinterpret_cast<void *>(e.wordAddr);
            rawStore(p, maskMerge(rawLoad(p), e.value, e.mask));
        }
        const std::uint64_t next = d.norecSnapshot + 2;
        d.dom().norecSeq.store(next, std::memory_order_release);
        d.clearSets();
        // Quiesce until every concurrent transaction has validated at
        // (or begun after) this commit; needed so that memory the
        // caller reclaims cannot still be read by doomed transactions.
        return next;
    }

    void
    rollback(Runtime &rt, TxDesc &d) override
    {
        d.clearSets();
    }

    bool
    isReadOnly(const TxDesc &d) const override
    {
        return d.redoLog.empty();
    }

  private:
    /**
     * Value-based validation: wait for a stable (even) sequence, then
     * confirm every read still returns the recorded value.
     * @return The even sequence number validation succeeded at.
     * @throws TxAbort if any value changed.
     */
    std::uint64_t
    validate(Runtime &rt, TxDesc &d)
    {
        for (;;) {
            const std::uint64_t t =
                d.dom().norecSeq.load(std::memory_order_acquire);
            if (t & 1) {
                cpuRelax();
                continue;
            }
            for (const ValueEntry &e : d.valueReads) {
                if (rawLoad(reinterpret_cast<void *>(e.wordAddr)) !=
                    e.value)
                    throw TxAbort{};
            }
            std::atomic_thread_fence(std::memory_order_acquire);
            // atom-allow: relaxed re-read ordered by the fence above
            if (d.dom().norecSeq.load(std::memory_order_relaxed) == t) {
                d.publishStart(t);
                return t;
            }
        }
    }
};

NOrecAlgo gAlgo;

} // namespace

Algo &
norecAlgo()
{
    return gAlgo;
}

} // namespace tmemc::tm
