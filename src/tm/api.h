/**
 * @file
 * Public transactional-memory API.
 *
 * This is the library rendering of the Draft C++ TM Specification
 * constructs the paper exercises:
 *
 *   __transaction_atomic { S; }   =>  tm::run(attr, [&](tm::TxDesc &tx) { S; })
 *                                     with attr.kind == TxnKind::Atomic
 *   __transaction_relaxed { S; }  =>  ... TxnKind::Relaxed
 *   transactional loads/stores    =>  tm::txLoad / tm::txStore /
 *                                     tm::txLoadBytes / tm::txStoreBytes
 *   onCommit / onAbort handlers   =>  tm::onCommit / tm::onAbort
 *   "in transaction?" query       =>  tm::inTransaction()
 *   transactional malloc/free     =>  tm::txMalloc / tm::txFree
 *
 * Transaction bodies receive the TxDesc explicitly — the analogue of
 * the hidden transaction-context parameter GCC passes to instrumented
 * clones. A body may return a value (transaction expressions).
 *
 * Re-execution semantics: the body lambda is re-invoked from its start
 * on abort, so locals declared inside the body are reinitialized, just
 * as with GCC's checkpoint/longjmp. Captured locals mutated inside the
 * body are NOT rolled back; initialize them at the top of the body.
 */

#ifndef TMEMC_TM_API_H
#define TMEMC_TM_API_H

#include <cstdlib>
#include <cstring>
#include <exception>
#include <functional>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/logging.h"
#include "tm/runtime.h"

namespace tmemc::tm
{

/** This thread's transaction descriptor (registered on first use). */
TM_PURE TxDesc &myDesc();

/** True while the calling thread is inside a transaction. */
TM_PURE bool inTransaction();

namespace detail
{

/** Dispatch a word load through the algorithm or serial fast path.
 *  All transactional loads funnel through here — including the serial
 *  raw path and the invisible-reader fast path — which is what lets
 *  the opacity recorder capture every attempt whole. */
TMEMC_ALWAYS_INLINE std::uint64_t
loadWordDispatch(Runtime &rt, TxDesc &d, std::uintptr_t word_addr)
{
    std::uint64_t w;
    if (d.state == RunState::SerialIrrevocable)
        w = rawLoad(reinterpret_cast<void *>(word_addr));
    else if (d.roFast)
        w = rt.algo().loadWordRO(rt, d, word_addr);
    else
        w = rt.algo().loadWord(rt, d, word_addr);
    if (d.opRecording)
        opacity::noteAccess(d, false, word_addr, w, ~std::uint64_t{0});
    return w;
}

/** Dispatch a word store through the algorithm or serial fast path. */
TMEMC_ALWAYS_INLINE void
storeWordDispatch(Runtime &rt, TxDesc &d, std::uintptr_t word_addr,
                  std::uint64_t val, std::uint64_t mask)
{
    if (d.state == RunState::SerialIrrevocable) {
        void *p = reinterpret_cast<void *>(word_addr);
        rawStore(p, maskMerge(rawLoad(p), val, mask));
        if (d.opRecording)
            opacity::noteAccess(d, true, word_addr, val, mask);
        return;
    }
    if (d.roFast)
        promoteRoFast(d, "store");  // Throws; retry takes the full path.
    rt.algo().storeWord(rt, d, word_addr, val, mask);
    if (d.opRecording)
        opacity::noteAccess(d, true, word_addr, val, mask);
}

} // namespace detail

/**
 * Transactionally copy @p n bytes from shared memory at @p src into
 * private memory at @p dst.
 */
TM_SAFE void txLoadBytes(TxDesc &d, void *dst, const void *src, std::size_t n);

/**
 * Transactionally copy @p n bytes from private memory at @p src into
 * shared memory at @p dst.
 */
TM_SAFE void txStoreBytes(TxDesc &d, void *dst, const void *src, std::size_t n);

/** Transactionally load a trivially copyable value. */
template <typename T>
TM_SAFE T
txLoad(TxDesc &d, const T *addr)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "transactional access requires trivially copyable types");
    if constexpr (sizeof(T) == 8) {
        if (wordOffset(addr) == 0) {
            const std::uint64_t w = detail::loadWordDispatch(
                Runtime::get(), d, wordBase(addr));
            T out;
            std::memcpy(&out, &w, sizeof(T));
            return out;
        }
    }
    T out;
    txLoadBytes(d, &out, addr, sizeof(T));
    return out;
}

/** Transactionally store a trivially copyable value. */
template <typename T>
TM_SAFE void
txStore(TxDesc &d, T *addr, const T &val)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "transactional access requires trivially copyable types");
    if constexpr (sizeof(T) == 8) {
        if (wordOffset(addr) == 0) {
            std::uint64_t w;
            std::memcpy(&w, &val, sizeof(T));
            detail::storeWordDispatch(Runtime::get(), d, wordBase(addr), w,
                                      ~std::uint64_t{0});
            return;
        }
    }
    txStoreBytes(d, addr, &val, sizeof(T));
}

/**
 * A shared variable accessed transactionally. rawGet/rawSet bypass
 * instrumentation and require external synchronization (used for
 * initialization and for the IP branch's privatized accesses).
 */
template <typename T>
class TmVar
{
  public:
    constexpr TmVar() = default;
    constexpr explicit TmVar(T v) : val_(v) {}

    /** Transactional read. */
    TM_SAFE T get(TxDesc &d) const { return txLoad(d, &val_); }
    /** Transactional write. */
    TM_SAFE void set(TxDesc &d, const T &v) { txStore(d, &val_, v); }

    /** Uninstrumented read; caller provides synchronization. Escape
     *  hatch like tm/raw.h rawLoad: tmlint flags it inside checked
     *  transaction bodies (rule TM1). */
    TM_PURE T rawGet() const { return const_cast<const volatile T &>(val_); }
    /** Uninstrumented write; caller provides synchronization. Escape
     *  hatch: flagged by tmlint inside checked bodies (rule TM1). */
    TM_PURE void rawSet(const T &v) { const_cast<volatile T &>(val_) = v; }

  private:
    T val_{};
};

/**
 * Register a deferred action to run after the enclosing transaction
 * commits (after all locks are released). Outside a transaction the
 * action runs immediately — the pattern the paper needed
 * inTransaction() for.
 */
TM_SAFE void onCommit(TxDesc &d, std::function<void()> fn);

/** Register a deferred action to run after a rollback, pre-retry. */
TM_SAFE void onAbort(TxDesc &d, std::function<void()> fn);

/**
 * Transaction-safe allocation: memory is usable immediately; if the
 * transaction aborts, the allocation is reclaimed automatically.
 */
TM_SAFE void *txMalloc(TxDesc &d, std::size_t bytes);

/** txMalloc that reports exhaustion: @return nullptr instead of
 *  terminating, for callers with a graceful out-of-memory path. */
TM_SAFE void *txTryMalloc(TxDesc &d, std::size_t bytes);

/**
 * Transaction-safe free: the memory is reclaimed only after commit
 * (and after quiescence), so concurrent doomed readers cannot fault.
 */
TM_SAFE void txFree(TxDesc &d, void *ptr);

/**
 * Execute @p body as a transaction described by @p attr.
 *
 * The body receives the thread's TxDesc and may return a value.
 * Nested calls flatten into the outer transaction. A non-TxAbort
 * exception escaping the body commits the transaction and propagates
 * (the draft specification's behaviour for relaxed transactions).
 */
template <typename F>
TM_SAFE auto
run(const TxnAttr &attr, F &&body) -> std::invoke_result_t<F &, TxDesc &>
{
    using R = std::invoke_result_t<F &, TxDesc &>;
    Runtime &rt = Runtime::get();
    TxDesc &d = myDesc();

    if (d.nesting > 0) {
        // Flat nesting: subsumed by the outer transaction. A relaxed
        // transaction lexically inside an atomic one is a static error
        // in the specification.
        if (attr.kind == TxnKind::Relaxed && d.kind == TxnKind::Atomic &&
            d.state != RunState::SerialIrrevocable) {
            panic("relaxed transaction '%s' nested in atomic '%s'",
                  attr.name, d.attr ? d.attr->name : "?");
        }
        ++d.nesting;
        struct NestGuard
        {
            TxDesc &d;
            ~NestGuard() { --d.nesting; }
        } guard{d};
        return body(d);
    }

    detail::setupTop(rt, d, attr);
    for (;;) {
        detail::beginAttempt(rt, d);
        std::exception_ptr user_exc;
        std::optional<std::conditional_t<std::is_void_v<R>, char, R>> result;
        try {
            if constexpr (std::is_void_v<R>)
                body(d);
            else
                result.emplace(body(d));
        } catch (TxAbort &) {
            detail::handleAbort(rt, d);
            continue;
        } catch (TxRetry &) {
            detail::handleRetry(rt, d);
            continue;
        } catch (...) {
            // Commit-on-escape semantics for exceptions.
            user_exc = std::current_exception();
        }
        try {
            detail::commitAttempt(rt, d);
        } catch (TxAbort &) {
            detail::handleAbort(rt, d);
            continue;
        }
        detail::finishCommit(rt, d);
        if (user_exc)
            std::rethrow_exception(user_exc);
        if constexpr (std::is_void_v<R>)
            return;
        else
            return std::move(*result);
    }
}

/** Convenience: run an atomic transaction with an ad-hoc static attr. */
#define TMEMC_TXN_SITE(var, site_name, txn_kind, starts_serial)            \
    static const ::tmemc::tm::TxnAttr var{site_name, txn_kind,             \
                                          starts_serial}

} // namespace tmemc::tm

#endif // TMEMC_TM_API_H
