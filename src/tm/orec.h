/**
 * @file
 * Ownership-record (orec) table shared by the GccEager and Lazy
 * algorithms.
 *
 * Each orec protects a hash stripe of program memory. The word layout
 * follows libitm's method-ml style:
 *
 *  - LSB clear: the orec is unlocked and the upper 63 bits hold the
 *    version (the global-clock value of the last commit that wrote the
 *    stripe), i.e. word == version << 1.
 *  - LSB set: the orec is write-locked and the upper bits hold the
 *    owning transaction descriptor, i.e. word == (uintptr_t)desc | 1.
 *
 * TxDesc objects are cache-line aligned, so their low bit is free.
 */

#ifndef TMEMC_TM_OREC_H
#define TMEMC_TM_OREC_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/compiler.h"
#include "tm/raw.h"

namespace tmemc::tm
{

class TxDesc;

/** A single ownership record.
 *  Ordering contract: acquiring the orec (CAS to a locked word) needs
 *  the load side; releasing it (version store) publishes the covered
 *  data and needs release. Validation loads need acquire unless a
 *  trailing acquire fence supplies the edge (atom-allow'd per site).
 */
// atom-protocol: orec-lock
using OrecWord = std::atomic<std::uint64_t>;

/** Decoded view of an orec word. */
struct OrecSnapshot
{
    std::uint64_t word;  //!< Raw word as loaded.

    bool locked() const { return word & 1; }

    /** Owning descriptor; only meaningful when locked(). */
    TxDesc *
    owner() const
    {
        return reinterpret_cast<TxDesc *>(word & ~std::uint64_t{1});
    }

    /** Version; only meaningful when !locked(). */
    std::uint64_t version() const { return word >> 1; }
};

/** Encode an unlocked orec word holding @p version. */
inline std::uint64_t
orecVersionWord(std::uint64_t version)
{
    return version << 1;
}

/** Encode a locked orec word owned by @p desc. */
inline std::uint64_t
orecLockWord(const TxDesc *desc)
{
    return reinterpret_cast<std::uintptr_t>(desc) | 1;
}

/**
 * Hash table of ownership records. One global instance lives in the
 * Runtime; its size is configured at initialization.
 */
class OrecTable
{
  public:
    /** @param bits log2 of the number of orecs. */
    explicit OrecTable(std::uint32_t bits)
        : mask_((std::size_t{1} << bits) - 1),
          table_(std::make_unique<OrecWord[]>(std::size_t{1} << bits))
    {
        // atom-allow: pre-publication zeroing inside the constructor
        for (std::size_t i = 0; i <= mask_; ++i)
            table_[i].store(0, std::memory_order_relaxed);
    }

    /** Orec covering the TM word at @p word_base. */
    TMEMC_ALWAYS_INLINE OrecWord &
    forWord(std::uintptr_t word_base)
    {
        // Shift past the word-offset bits, then mix the upper bits so
        // adjacent structures do not all collide on low-entropy slots.
        std::uintptr_t h = word_base >> 3;
        h ^= h >> 13;
        return table_[h & mask_];
    }

    /** Number of orecs in the table. */
    std::size_t size() const { return mask_ + 1; }

  private:
    std::size_t mask_;
    std::unique_ptr<OrecWord[]> table_;
};

} // namespace tmemc::tm

#endif // TMEMC_TM_OREC_H
