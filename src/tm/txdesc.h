/**
 * @file
 * Per-thread transaction descriptor.
 *
 * A TxDesc is the runtime state of one thread's (possibly flat-nested)
 * transaction: its read set, write/undo logs, held orec locks, deferred
 * handlers and frees, plus the per-thread statistics block. It is the
 * library analogue of libitm's gtm_thread.
 *
 * The descriptor is cache-line aligned so its address can double as an
 * orec lock word (low bit free, see orec.h), and so concurrent
 * publishing of pubStart does not false-share.
 */

#ifndef TMEMC_TM_TXDESC_H
#define TMEMC_TM_TXDESC_H

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/backoff.h"
#include "common/compiler.h"
#include "tm/attr.h"
#include "tm/handlers.h"
#include "tm/opacity.h"
#include "tm/orec.h"
#include "tm/redo_log.h"
#include "tm/stats.h"

namespace tmemc::tm
{

class TxDomain;

/**
 * Control-flow exception used to unwind a doomed transaction back to
 * the retry loop in tm::run(). This models libitm's longjmp back to
 * the begin checkpoint.
 */
struct TxAbort
{
};

/**
 * Control-flow exception for tm::retry(): the transaction rolls back
 * and blocks until another transaction commits, then re-executes.
 * This is the composable-memory-transactions "retry" the paper lists
 * among the condition-synchronization mechanisms TM specifications
 * should adopt (Section 3.2 / Section 5).
 */
struct TxRetry
{
};

/** Orec-based read-set entry: the orec and the word observed at read. */
struct ReadEntry
{
    OrecWord *orec;
    std::uint64_t word;
};

/** Value-based read-set entry (NOrec). */
struct ValueEntry
{
    std::uintptr_t wordAddr;
    std::uint64_t value;
};

/** Undo-log entry (GccEager direct update). */
struct UndoEntry
{
    std::uintptr_t wordAddr;
    std::uint64_t oldValue;
};

/** A write lock this transaction holds and the word it replaced. */
struct LockEntry
{
    OrecWord *orec;
    std::uint64_t prevWord;
};

/** Execution mode of the current transaction attempt. */
enum class RunState : std::uint8_t
{
    Inactive,           //!< No transaction running on this thread.
    Speculative,        //!< Instrumented, abortable execution.
    SerialIrrevocable,  //!< Exclusive, uninstrumented execution.
};

/** Per-thread transaction descriptor. */
class alignas(cachelineBytes) TxDesc
{
  public:
    // ------------------------------------------------------------------
    // Identity and lifecycle
    // ------------------------------------------------------------------
    std::uint64_t threadId = 0;

    // ------------------------------------------------------------------
    // Current transaction attempt
    // ------------------------------------------------------------------
    RunState state = RunState::Inactive;
    const TxnAttr *attr = nullptr;
    TxnKind kind = TxnKind::Atomic;
    int nesting = 0;
    /** Why this transaction is (or became) serial. */
    SerialCause serialCause = SerialCause::None;
    /** Set by unsafeOp(): the retry must run in serial mode. */
    bool pendingSerialRestart = false;
    /** The rollback in progress was requested by unsafeOp(), not by a
     *  data conflict; it must not feed the contention manager. */
    bool abortIsSwitch = false;
    /** This attempt is on the invisible-reader fast path: loads are
     *  validated individually, no read set is kept, commit is O(1). */
    bool roFast = false;
    /** The next attempt must take the full path: the fast path hit a
     *  write (promotion) or a conflict (the full path can extend its
     *  start time; the fast path cannot). Cleared by setupTop. */
    bool roPromote = false;
    /** Consecutive conflict aborts of the current transaction. */
    std::uint32_t consecAborts = 0;

    // ------------------------------------------------------------------
    // Algorithm state
    // ------------------------------------------------------------------
    /**
     * Domain this transaction runs in (set by setupTop before the
     * start time is published; read concurrently by quiesce()). Points
     * at the runtime's home domain unless a DomainScope was in effect.
     */
    // atom-protocol: relaxed-ok(ordering rides on pubStart: written
    // before its release store, read after its acquire load)
    std::atomic<TxDomain *> domain{nullptr};

    /** The running transaction's domain (algorithm fast path). */
    TxDomain &
    dom()
    {
        return *domain.load(std::memory_order_relaxed);
    }

    /** Snapshot of the global clock (GccEager / Lazy). */
    std::uint64_t startTime = 0;
    /** Snapshot of the NOrec sequence lock. */
    std::uint64_t norecSnapshot = 0;
    /** Published start time for commit-time quiescence; 0 = inactive.
     *  Stored as startTime + 1 so that startTime 0 is representable. */
    // atom-protocol: release-acquire-pair
    std::atomic<std::uint64_t> pubStart{0};

    std::vector<ReadEntry> readSet;
    std::vector<ValueEntry> valueReads;
    std::vector<UndoEntry> undoLog;
    std::vector<LockEntry> writeLocks;
    RedoLog redoLog;

    // ------------------------------------------------------------------
    // Deferred actions
    // ------------------------------------------------------------------
    HandlerList onCommitHandlers;
    HandlerList onAbortHandlers;
    /** Buffers whose free() is deferred until after commit. */
    std::vector<void *> commitFrees;
    /** Speculatively allocated buffers to free on abort. */
    std::vector<void *> abortFrees;

    // ------------------------------------------------------------------
    // Contention-manager state and statistics
    // ------------------------------------------------------------------
    ExpBackoff cmBackoff;
    ThreadStats stats;

    // ------------------------------------------------------------------
    // Opacity recorder (opacity.h; latched per attempt by beginAttempt)
    // ------------------------------------------------------------------
    /** This attempt is being recorded for the opacity checker. */
    bool opRecording = false;
    /** Arm epoch the attempt latched; finishRecord drops the record
     *  if the armed window has moved on (opacity.h). */
    std::uint64_t opEpoch = 0;
    /** Global stamp taken before the attempt's first access. */
    std::uint64_t opBegin = 0;
    /** Program-order access log of the recorded attempt. */
    std::vector<opacity::Access> opAccesses;

    // ------------------------------------------------------------------
    // Observability (obs/metrics.h histograms, stamped by runtime.cc)
    // ------------------------------------------------------------------
    /** nowNanos() at setupTop: whole-transaction latency origin. */
    std::uint64_t obsStartNs = 0;
    /** nowNanos() when the attempt entered serial mode (0: never). */
    std::uint64_t obsSerialStartNs = 0;
    /** Attempts (speculative + serial) of the current transaction. */
    std::uint32_t obsAttempts = 0;

    /** Reset all per-attempt algorithm state. */
    void
    clearSets()
    {
        readSet.clear();
        valueReads.clear();
        undoLog.clear();
        writeLocks.clear();
        redoLog.clear();
    }

    /** Publish this attempt's start time for quiescence. */
    void
    publishStart(std::uint64_t start_time)
    {
        pubStart.store(start_time + 1, std::memory_order_release);
    }

    /** Withdraw from quiescence consideration. */
    void
    unpublishStart()
    {
        pubStart.store(0, std::memory_order_release);
    }
};

} // namespace tmemc::tm

#endif // TMEMC_TM_TXDESC_H
