/**
 * @file
 * Opacity history recorder: capture every transaction attempt's
 * program-order read/write accesses plus global begin/end stamps, so
 * a checker (tests/tm/opacity_checker.h) can verify each executed
 * history against opacity — equivalence to some serial order that
 * respects real-time precedence in which even aborted attempts
 * observed consistent snapshots.
 *
 * Recording is armed process-wide. Disarmed cost is one branch on a
 * per-descriptor bool in the word-dispatch fast path; the descriptor
 * flag is latched from the global switch once per attempt, so an
 * attempt is either recorded whole or not at all.
 *
 * Stamp discipline: stamps come from one global counter, so their
 * numeric order is the real-time order of the stamping operations.
 * The begin stamp is taken before the attempt's first access and the
 * end stamp after its commit/rollback completes — both choices only
 * WIDEN the attempt's real-time window, which can only weaken the
 * precedence constraints the checker enforces, never fabricate a
 * violation.
 */

#ifndef TMEMC_TM_OPACITY_H
#define TMEMC_TM_OPACITY_H

#include <atomic>
#include <cstdint>
#include <vector>

namespace tmemc::tm
{

class TxDesc;

namespace opacity
{

/** One transactional word access, in program order. */
struct Access
{
    bool isWrite;
    std::uintptr_t addr;
    /** Value observed (loads: post redo-merge) or stored. */
    std::uint64_t value;
    /** Byte mask for writes; loads always read the full word. */
    std::uint64_t mask;
};

/** One completed transaction attempt. */
struct TxRecord
{
    std::uint64_t begin = 0;  //!< Global stamp before the first access.
    std::uint64_t end = 0;    //!< Global stamp after completion.
    bool committed = false;
    bool serial = false;      //!< Ran serial-irrevocably.
    bool roFast = false;      //!< Ran on the invisible-reader fast path.
    std::uint64_t threadId = 0;
    const char *site = "?";
    /** Domain the attempt ran in; histories are checked per domain. */
    const void *domainTag = nullptr;
    std::vector<Access> accesses;
};

/** Accesses kept per attempt before the record is dropped whole. */
constexpr std::size_t kMaxAccessesPerTx = 1u << 14;
/** Attempt records kept per armed window before dropping. */
constexpr std::size_t kMaxRecords = 1u << 16;

/**
 * Global arm epoch (definition in opacity.cc): odd while armed, even
 * while disarmed; arm() and collect() each advance it. Every recorded
 * attempt latches the epoch it started under (TxDesc::opEpoch), and
 * finishRecord drops the record if the epoch has moved on — so a
 * straggler thread from a previous armed window that was never joined
 * cannot leak its stale history into the next window's collect().
 */
// atom-protocol: relaxed-ok(written under gRecordsLock; lock-free
// readers tag records and finishRecord revalidates under the lock)
extern std::atomic<std::uint64_t> gEpoch;

/** True while recording is armed (relaxed: per-attempt latch). */
inline bool
armed()
{
    return (gEpoch.load(std::memory_order_relaxed) & 1) != 0;
}

/** Arm recording; clears previously collected records and overflow. */
void arm();

/** Disarm and return (move out) everything recorded since arm(). */
std::vector<TxRecord> collect();

/** True when any attempt or the record list overflowed its cap while
 *  armed (dropped records make a pass vacuous; tests must assert
 *  this stays false and size their workloads under the caps). */
bool overflowed();

/** Next stamp from the global real-time counter. */
std::uint64_t nextStamp();

/** Append an access to the armed attempt's log (cap-checked). */
void noteAccess(TxDesc &d, bool is_write, std::uintptr_t addr,
                std::uint64_t value, std::uint64_t mask);

/** Latch the arm switch into @p d and stamp the attempt's begin. */
void beginRecord(TxDesc &d);

/** Stamp the attempt's end and emit its record. */
void finishRecord(TxDesc &d, bool committed, bool serial, bool ro_fast);

} // namespace opacity

} // namespace tmemc::tm

#endif // TMEMC_TM_OPACITY_H
