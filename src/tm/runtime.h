/**
 * @file
 * Global TM runtime: configuration, clocks, orec table, the serial
 * lock, thread registry, and the begin/commit/abort orchestration used
 * by tm::run().
 *
 * This is the library analogue of libitm's global state. It is a
 * process-wide singleton; configure() swaps algorithms, contention
 * managers, and the presence of the global readers/writer lock between
 * experiments (it must be called while no transaction is in flight).
 */

#ifndef TMEMC_TM_RUNTIME_H
#define TMEMC_TM_RUNTIME_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "tm/algo.h"
#include "tm/attr.h"
#include "tm/cm.h"
#include "tm/domain.h"
#include "tm/orec.h"
#include "tm/serial_lock.h"
#include "tm/stats.h"
#include "tm/txdesc.h"

namespace tmemc::tm
{

/** Process-wide TM runtime state. */
class Runtime
{
  public:
    /** The singleton instance. */
    static Runtime &get();

    /**
     * Reconfigure the runtime. Resets the orec table, clocks, and
     * statistics. Must be called while no transaction is active;
     * violating that is a fatal error.
     */
    void configure(const RuntimeCfg &cfg);

    /** Current configuration. */
    const RuntimeCfg &cfg() const { return cfg_; }

    /** Active algorithm / contention manager. */
    Algo &algo() { return *algo_; }
    ContentionManager &cm() { return *cm_; }

    /**
     * The home domain: the process-wide clock/seqlock/serial-lock/orec
     * state every transaction historically shared. Transactions run
     * here unless a DomainScope routes them elsewhere (domain.h).
     */
    TxDomain &homeDomain() { return home_; }

    /** Home-domain ownership-record table (compat accessor). */
    OrecTable &orecs() { return home_.orecs(); }

    // ------------------------------------------------------------------
    // Thread registry (the separate thread-creation lock GCC needed
    // once the readers/writer lock was removed)
    // ------------------------------------------------------------------
    void registerThread(TxDesc *d);
    void unregisterThread(TxDesc *d);

    /**
     * Commit-time quiescence for privatization safety: wait until no
     * transaction in @p domain that started before @p commit_time is
     * still running. Transactions in other domains are invisible —
     * their published start times are on unrelated clocks.
     */
    void quiesce(TxDomain *domain, std::uint64_t commit_time,
                 const TxDesc *self);

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------
    /** Aggregate statistics across live and departed threads. */
    StatsSnapshot snapshot();
    /** Zero all statistics (between benchmark phases). */
    void resetStats();

  private:
    Runtime();

    RuntimeCfg cfg_;
    Algo *algo_ = nullptr;
    ContentionManager *cm_ = nullptr;
    TxDomain home_;

    std::mutex regLock_;
    std::vector<TxDesc *> threads_;
    std::vector<ThreadStats> departed_;
    std::uint64_t nextThreadId_ = 1;
};

namespace detail
{

/** Begin one attempt (speculative or serial) of the top-level txn. */
void beginAttempt(Runtime &rt, TxDesc &d);

/** Commit the running attempt; throws TxAbort on validation failure. */
void commitAttempt(Runtime &rt, TxDesc &d);

/** Post-commit epilogue: stats, deferred frees, onCommit handlers. */
void finishCommit(Runtime &rt, TxDesc &d);

/** Roll back after TxAbort: undo, CM consultation, onAbort handlers. */
void handleAbort(Runtime &rt, TxDesc &d);

/**
 * Roll back after TxRetry, then block until some transaction commits
 * a write (global-clock movement), so the re-execution can observe a
 * different state.
 */
void handleRetry(Runtime &rt, TxDesc &d);

/** Set up descriptor state for a new top-level transaction. */
void setupTop(Runtime &rt, TxDesc &d, const TxnAttr &attr);

/**
 * Promote an invisible-reader fast-path attempt to the full path: the
 * body performed an operation the fast path cannot support (a store, a
 * deferred handler, a txFree). Rolls the attempt back via TxAbort; the
 * retry re-executes with full instrumentation. Not a conflict — the
 * contention manager is not consulted.
 */
[[noreturn]] void promoteRoFast(TxDesc &d, const char *what);

} // namespace detail

/**
 * Declare that the current operation is unsafe (I/O, volatile access,
 * unannotated call, ...). In an atomic transaction this is a fatal
 * error, modelling the specification's static rejection. In a
 * speculative relaxed transaction it aborts and restarts the
 * transaction in serial-irrevocable mode (what GCC does for an
 * in-flight switch). Once serial, it is a no-op.
 *
 * tmlint treats a preceding unsafeOp() call in the same block as the
 * serial-path waiver for rule TM3: the irrevocable operation that
 * follows it is exactly the in-flight-switch pattern.
 */
TM_SAFE void unsafeOp(TxDesc &d, const char *what);

/**
 * Model a call to a function with annotation @p fn_attr from inside a
 * transaction. Unannotated callees force serialization unless the
 * runtime is configured to infer safety (as GCC does).
 */
TM_SAFE void noteCall(TxDesc &d, FnAttr fn_attr, const char *name);

/**
 * Condition synchronization: abort the current transaction, block the
 * thread until another transaction commits, and re-execute from the
 * start. Call when a transactionally-read predicate does not hold
 * (e.g. "queue is empty"). Illegal in serial-irrevocable mode: an
 * irrevocable transaction excludes the very commits it would wait for.
 */
[[noreturn]] TM_SAFE void retry(TxDesc &d);

} // namespace tmemc::tm

#endif // TMEMC_TM_RUNTIME_H
