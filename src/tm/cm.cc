/**
 * @file
 * Contention-manager implementations.
 */

#include "tm/cm.h"

#include <thread>

#include "common/backoff.h"
#include "tm/runtime.h"

namespace tmemc::tm
{

namespace
{

/** Retry immediately, forever (paper Figure 10 configuration). */
class NoCm : public ContentionManager
{
  public:
    const char *name() const override { return "nocm"; }
};

/** Randomized exponential backoff after each abort. */
class BackoffCm : public ContentionManager
{
  public:
    const char *name() const override { return "backoff"; }

    bool
    afterAbort(Runtime &rt, TxDesc &d) override
    {
        d.cmBackoff.pause();
        return false;
    }

    void
    afterCommit(Runtime &rt, TxDesc &d) override
    {
        d.cmBackoff.reset();
    }
};

/**
 * GCC's default policy: a transaction that aborts N times in a row
 * restarts in serial-irrevocable mode for guaranteed progress.
 */
class SerialAfterNCm : public ContentionManager
{
  public:
    const char *name() const override { return "serial-after-n"; }

    bool
    afterAbort(Runtime &rt, TxDesc &d) override
    {
        return d.consecAborts >= rt.cfg().serialAfterAborts;
    }
};

/**
 * Hourglass / toxic-transaction policy: a starving transaction claims
 * the "neck"; while the neck is held, no other transaction may begin,
 * so the starving one eventually runs (almost) alone and commits.
 * Unlike SerialAfterN this needs no global readers/writer lock, which
 * is why the paper pairs it with the NoLock runtime in Figure 11.
 */
class HourglassCm : public ContentionManager
{
  public:
    const char *name() const override { return "hourglass"; }

    void
    beforeBegin(Runtime &rt, TxDesc &d) override
    {
        for (;;) {
            TxDesc *owner = d.dom().toxic.load(std::memory_order_acquire);
            if (owner == nullptr || owner == &d)
                return;
            std::this_thread::yield();
        }
    }

    bool
    afterAbort(Runtime &rt, TxDesc &d) override
    {
        if (d.consecAborts >= rt.cfg().hourglassThreshold) {
            TxDesc *expected = nullptr;
            d.dom().toxic.compare_exchange_strong(expected, &d,
                                             std::memory_order_acq_rel);
            // If someone else already holds the neck we simply keep
            // retrying; beforeBegin will stall us until they commit.
        }
        return false;
    }

    void
    afterCommit(Runtime &rt, TxDesc &d) override
    {
        TxDesc *expected = &d;
        d.dom().toxic.compare_exchange_strong(expected, nullptr,
                                         std::memory_order_acq_rel);
    }
};

NoCm gNoCm;
BackoffCm gBackoffCm;
SerialAfterNCm gSerialAfterNCm;
HourglassCm gHourglassCm;

} // namespace

ContentionManager &noCm() { return gNoCm; }
ContentionManager &backoffCm() { return gBackoffCm; }
ContentionManager &hourglassCm() { return gHourglassCm; }
ContentionManager &serialAfterNCm() { return gSerialAfterNCm; }

ContentionManager &
cmFor(CmKind kind)
{
    switch (kind) {
      case CmKind::NoCM:
        return gNoCm;
      case CmKind::Backoff:
        return gBackoffCm;
      case CmKind::Hourglass:
        return gHourglassCm;
      case CmKind::SerialAfterN:
        return gSerialAfterNCm;
    }
    return gSerialAfterNCm;
}

} // namespace tmemc::tm
