/**
 * @file
 * Runtime singleton, thread registry, quiescence, and the
 * begin/commit/abort orchestration behind tm::run().
 */

#include "tm/runtime.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

#include "common/logging.h"
#include "obs/hist.h"
#include "obs/metrics.h"
#include "obs/tail.h"
#include "obs/trace.h"
#include "tm/api.h"
#include "tm/strict.h"

namespace tmemc::tm
{

Runtime::Runtime() : home_(RuntimeCfg{}.orecTableBits)
{
    configure(RuntimeCfg{});
    // Fold the cross-thread stats into the metrics registry under the
    // "tm_" prefix. The callback runs outside the registry's own lock
    // (snapshot() copies the source list first), so taking regLock_
    // inside Runtime::snapshot() is safe.
    obs::MetricsRegistry::get().registerSource("tm", [this] {
        const StatsSnapshot snap = this->snapshot();
        const StatBlock &t = snap.total;
        return std::vector<obs::Counter>{
            {"txns", t.txns},
            {"commits", t.commits},
            {"aborts", t.aborts},
            {"retries", t.retries},
            {"start_serial", t.startSerial},
            {"inflight_switch", t.inflightSwitch},
            {"abort_serial", t.abortSerial},
            {"serial_commits", t.serialCommits},
            {"readonly_commits", t.readOnlyCommits},
            {"rofast_commits", t.roFastCommits},
            {"rofast_promotions", t.roPromotions},
        };
    });
}

Runtime &
Runtime::get()
{
    static Runtime instance;
    return instance;
}

void
Runtime::configure(const RuntimeCfg &cfg)
{
    // Validate before taking regLock_: fatal() runs exit(), which runs
    // this thread's TLS destructors, which re-enter the registry lock.
    if (!cfg.useSerialLock && cfg.cm == CmKind::SerialAfterN) {
        fatal("SerialAfterN contention management requires the serial "
              "lock; configure a different CM for NoLock mode");
    }
    if (!cfg.useSerialLock && cfg.algo == AlgoKind::Serial)
        fatal("the Serial algorithm requires the serial lock");

    bool in_flight = false;
    std::lock_guard<std::mutex> guard(regLock_);
    for (TxDesc *d : threads_) {
        if (d->state != RunState::Inactive)
            in_flight = true;
    }
    if (in_flight)
        panic("Runtime::configure called with a transaction in flight");

    cfg_ = cfg;
    algo_ = &algoFor(cfg.algo);
    cm_ = &cmFor(cfg.cm);
    home_.reset(cfg.orecTableBits);
}

void
Runtime::registerThread(TxDesc *d)
{
    std::lock_guard<std::mutex> guard(regLock_);
    d->threadId = nextThreadId_++;
    threads_.push_back(d);
}

void
Runtime::unregisterThread(TxDesc *d)
{
    std::lock_guard<std::mutex> guard(regLock_);
    departed_.push_back(d->stats);
    std::erase(threads_, d);
}

void
Runtime::quiesce(TxDomain *domain, std::uint64_t commit_time,
                 const TxDesc *self)
{
    // Hold the registry lock for the whole wait so no descriptor can
    // be destroyed under us. This cannot deadlock: callers quiesce
    // only after unpublishing their own attempt, so a second committer
    // blocked on this mutex no longer holds anyone else up.
    std::lock_guard<std::mutex> guard(regLock_);
    for (TxDesc *other : threads_) {
        if (other == self)
            continue;
        for (;;) {
            const std::uint64_t pub =
                other->pubStart.load(std::memory_order_acquire);
            if (pub == 0 || pub - 1 >= commit_time)
                break;
            // Cross-domain starts are on unrelated clocks; comparing
            // them would stall this committer behind transactions that
            // can never read its domain's memory. The domain store
            // precedes the start publication (release order), so a
            // mismatch here means either a genuinely foreign
            // transaction or one that already unpublished.
            if (other->domain.load(std::memory_order_relaxed) != domain)
                break;
            std::this_thread::yield();
        }
    }
}

StatsSnapshot
Runtime::snapshot()
{
    std::lock_guard<std::mutex> guard(regLock_);
    StatsSnapshot snap;
    auto fold = [&](const ThreadStats &ts) {
        snap.total.add(ts.total);
        for (const auto &[attr, block] : ts.perSite)
            snap.perSite[attr].add(block);
        for (const auto &[attr, causes] : ts.switchBlame) {
            for (const auto &[what, count] : causes)
                snap.switchBlame[attr][what] += count;
        }
        snap.abortsPerThread.push_back(ts.total.aborts);
        snap.commitsPerThread.push_back(ts.total.commits);
    };
    for (const TxDesc *d : threads_)
        fold(d->stats);
    for (const ThreadStats &ts : departed_)
        fold(ts);
    return snap;
}

void
Runtime::resetStats()
{
    std::lock_guard<std::mutex> guard(regLock_);
    for (TxDesc *d : threads_)
        d->stats = ThreadStats{};
    departed_.clear();
}

// ---------------------------------------------------------------------
// Thread-local descriptor
// ---------------------------------------------------------------------

namespace
{

/** Registers the descriptor on construction, retires it on thread exit. */
struct DescHolder
{
    TxDesc desc;

    DescHolder() { Runtime::get().registerThread(&desc); }
    ~DescHolder() { Runtime::get().unregisterThread(&desc); }
};

thread_local DescHolder tlsDesc;

} // namespace

TxDesc &
myDesc()
{
    return tlsDesc.desc;
}

bool
inTransaction()
{
    return tlsDesc.desc.nesting > 0;
}

#if TMEMC_TM_STRICT

namespace strict
{

bool
inSpeculativeTx()
{
    return tlsDesc.desc.state == RunState::Speculative;
}

void
violation(const void *addr, const char *what)
{
    const TxDesc &d = tlsDesc.desc;
    std::fprintf(stderr,
                 "tm-strict: uninstrumented access to shared word %p via "
                 "%s inside %s transaction '%s' (thread %llu)\n",
                 addr, what,
                 d.kind == TxnKind::Atomic ? "atomic" : "relaxed",
                 d.attr != nullptr ? d.attr->name : "?",
                 static_cast<unsigned long long>(d.threadId));
    // Leave the event tail on stderr even when the recorder was not
    // armed via --trace: the rings may still hold records from an
    // earlier armed window, and the dump header orients the reader.
    const std::string tail = obs::dumpTrace();
    std::fputs("tm-strict: flight recorder tail follows\n", stderr);
    std::fputs(tail.empty() ? "(flight recorder empty)\n" : tail.c_str(),
               stderr);
    panic("tm-strict violation: raw access via %s while speculative",
          what);
}

} // namespace strict

#endif // TMEMC_TM_STRICT

// ---------------------------------------------------------------------
// Ambient transaction domain
// ---------------------------------------------------------------------

namespace
{

thread_local TxDomain *tlsDomain = nullptr;

} // namespace

TxDomain *
currentDomain()
{
    return tlsDomain;
}

DomainScope::DomainScope(TxDomain *domain) : prev_(tlsDomain)
{
    tlsDomain = domain;
}

DomainScope::~DomainScope()
{
    tlsDomain = prev_;
}

// ---------------------------------------------------------------------
// Orchestration
// ---------------------------------------------------------------------

namespace detail
{

void
setupTop(Runtime &rt, TxDesc &d, const TxnAttr &attr)
{
    if (attr.startsSerial && attr.kind == TxnKind::Atomic)
        panic("atomic transaction '%s' cannot be start-serial", attr.name);
    // Bind the ambient domain before any start time can be published:
    // quiesce() pairs its pubStart acquire with the publish release, so
    // this relaxed store is ordered before the publication it tags.
    TxDomain *domain = tlsDomain;
    d.domain.store(domain != nullptr ? domain : &rt.homeDomain(),
                   std::memory_order_relaxed);
    d.attr = &attr;
    d.kind = attr.kind;
    d.serialCause = attr.startsSerial ? SerialCause::Start
                                      : SerialCause::None;
    d.pendingSerialRestart = attr.startsSerial;
    d.abortIsSwitch = false;
    d.roFast = false;
    d.roPromote = false;
    d.consecAborts = 0;
    d.obsStartNs = obs::nowNanos();
    d.obsSerialStartNs = 0;
    d.obsAttempts = 0;
    d.stats.total.txns++;
    d.stats.site(&attr).txns++;
    d.onCommitHandlers.clear();
    d.onAbortHandlers.clear();
    d.commitFrees.clear();
    d.abortFrees.clear();
}

void
beginAttempt(Runtime &rt, TxDesc &d)
{
    rt.cm().beforeBegin(rt, d);

    const bool serial =
        d.pendingSerialRestart || rt.cfg().algo == AlgoKind::Serial;
    d.clearSets();
    d.nesting = 1;
    d.obsAttempts++;
    // Latch the opacity recorder before any lock wait or access: the
    // begin stamp may only predate the attempt's first access.
    opacity::beginRecord(d);
    obs::traceRecord(obs::TraceEvent::TxBegin, d.attr->name);
    // Tail span opens before any lock wait: a serial attempt's wait
    // for the write lock is part of the serialization cost the span
    // must attribute.
    obs::tail::noteTxBegin(d.attr->name, serial, d.obsAttempts);
    if (serial) {
        // Serial-mode time includes the wait for the write lock: that
        // wait is part of the serialization cost the paper measures.
        if (d.obsSerialStartNs == 0)
            d.obsSerialStartNs = obs::nowNanos();
        if (!rt.cfg().useSerialLock) {
            fatal("transaction '%s' requires serialization, but the "
                  "serial lock was removed (NoLock mode); cause=%d",
                  d.attr->name, static_cast<int>(d.serialCause));
        }
        d.dom().serialLock.writeLock();
        d.state = RunState::SerialIrrevocable;
        return;
    }
    if (rt.cfg().useSerialLock)
        d.dom().serialLock.readLock();
    d.state = RunState::Speculative;
    // Invisible-reader fast path: hinted read-only sites skip the read
    // set and orec writes entirely. The start time is still published —
    // writer commits must quiesce on fast readers like any others.
    if (rt.cfg().roFastPath && d.attr->readOnlyHint && !d.roPromote &&
        rt.algo().beginRO(rt, d)) {
        d.roFast = true;
        return;
    }
    rt.algo().begin(rt, d);
}

void
commitAttempt(Runtime &rt, TxDesc &d)
{
    if (d.state == RunState::Speculative) {
        if (d.roFast) {
            // Invisible-reader commit: every load was validated against
            // the begin snapshot as it happened, so the attempt is a
            // consistent snapshot already. No clock movement, nothing
            // to release, nothing to quiesce on.
            d.unpublishStart();
            if (rt.cfg().useSerialLock)
                d.dom().serialLock.readUnlock();
            return;
        }
        // Throws TxAbort if validation fails.
        const std::uint64_t quiesce_at = rt.algo().commit(rt, d);
        d.unpublishStart();
        if (rt.cfg().useSerialLock)
            d.dom().serialLock.readUnlock();
        // Privatization safety / safe reclamation: wait out every
        // transaction that started before this commit. Must happen
        // after unpublishing so concurrent committers cannot deadlock.
        if (quiesce_at != 0)
            rt.quiesce(&d.dom(), quiesce_at, &d);
    } else {
        d.dom().serialLock.writeUnlock();
    }
}

void
finishCommit(Runtime &rt, TxDesc &d)
{
    // Commit already took effect in commitAttempt, so the end stamp
    // lands after the attempt completed (a wider window is sound).
    opacity::finishRecord(d, /*committed=*/true,
                          d.state == RunState::SerialIrrevocable,
                          d.roFast);
    StatBlock &site = d.stats.site(d.attr);
    d.stats.total.commits++;
    site.commits++;
    switch (d.serialCause) {
      case SerialCause::Start:
        d.stats.total.startSerial++;
        site.startSerial++;
        break;
      case SerialCause::InFlight:
        d.stats.total.inflightSwitch++;
        site.inflightSwitch++;
        break;
      case SerialCause::Abort:
        d.stats.total.abortSerial++;
        site.abortSerial++;
        break;
      case SerialCause::None:
        break;
    }
    if (d.state == RunState::SerialIrrevocable) {
        d.stats.total.serialCommits++;
        site.serialCommits++;
    } else if (d.roFast) {
        d.stats.total.readOnlyCommits++;
        site.readOnlyCommits++;
        d.stats.total.roFastCommits++;
        site.roFastCommits++;
    } else if (rt.algo().isReadOnly(d)) {
        d.stats.total.readOnlyCommits++;
        site.readOnlyCommits++;
    }
    const std::uint64_t end_ns = obs::nowNanos();
    obs::hist(obs::HistKind::Tx).record(end_ns - d.obsStartNs);
    if (d.obsSerialStartNs != 0) {
        obs::hist(obs::HistKind::TxSerial)
            .record(end_ns - d.obsSerialStartNs);
    }
    // Attempts are scaled by 1000 so the histogram's microsecond-named
    // quantiles read directly as attempt counts (see obs/metrics.h).
    obs::hist(obs::HistKind::TxAttempts)
        .record(std::uint64_t{d.obsAttempts} * 1000);
    obs::traceRecord(obs::TraceEvent::TxCommit, d.attr->name);
    obs::tail::noteTxEnd(obs::tail::TxOutcome::Commit,
                         d.state == RunState::SerialIrrevocable);

    d.state = RunState::Inactive;
    d.nesting = 0;
    d.roFast = false;
    rt.cm().afterCommit(rt, d);

    // Deferred frees: safe now — commit() already quiesced, so no
    // doomed transaction still holds speculative references.
    for (void *p : d.commitFrees)
        std::free(p);
    d.commitFrees.clear();
    d.abortFrees.clear();
    d.onAbortHandlers.clear();

    // onCommit handlers run after every lock is released (GCC
    // semantics); they may themselves start transactions.
    d.onCommitHandlers.runAndClear();
}

void
handleAbort(Runtime &rt, TxDesc &d)
{
    if (d.state == RunState::SerialIrrevocable)
        panic("serial-irrevocable transaction '%s' aborted", d.attr->name);
    const bool was_ro_fast = d.roFast;
    d.roFast = false;
    rt.algo().rollback(rt, d);
    d.unpublishStart();
    if (rt.cfg().useSerialLock)
        d.dom().serialLock.readUnlock();
    // Stamp after rollback: the aborted attempt's window closes once
    // its speculative effects are fully undone.
    opacity::finishRecord(d, /*committed=*/false, /*serial=*/false,
                          was_ro_fast);
    d.state = RunState::Inactive;
    d.nesting = 0;

    // Reclaim speculative allocations.
    for (void *p : d.abortFrees)
        std::free(p);
    d.abortFrees.clear();
    d.commitFrees.clear();

    d.onAbortHandlers.runAndClear();
    d.onCommitHandlers.clear();

    if (d.abortIsSwitch) {
        // The rollback exists only to restart in serial mode; it does
        // not feed the contention manager.
        d.abortIsSwitch = false;
        obs::tail::noteTxEnd(obs::tail::TxOutcome::Switch, false);
        return;
    }
    if (was_ro_fast && d.roPromote) {
        // Promotion, not a conflict: the body needs write-path
        // machinery the fast path lacks. The retry runs fully
        // instrumented; the contention manager is not consulted.
        d.stats.total.roPromotions++;
        d.stats.site(d.attr).roPromotions++;
        obs::tail::noteTxEnd(obs::tail::TxOutcome::Promote, false);
        return;
    }
    if (was_ro_fast) {
        // Fast-path conflict: with no read set the attempt cannot
        // extend past the conflicting commit, but the full path can.
        // Retry there — and still charge the abort below, because this
        // was a genuine data conflict.
        d.roPromote = true;
    }

    obs::traceRecord(obs::TraceEvent::TxAbort, d.attr->name);
    obs::tail::noteTxEnd(obs::tail::TxOutcome::Abort, false);
    d.stats.total.aborts++;
    d.stats.site(d.attr).aborts++;
    d.consecAborts++;
    if (rt.cm().afterAbort(rt, d) && !d.pendingSerialRestart) {
        d.pendingSerialRestart = true;
        if (d.serialCause == SerialCause::None)
            d.serialCause = SerialCause::Abort;
    }
}

void
promoteRoFast(TxDesc &d, const char *what)
{
    obs::traceRecord(obs::TraceEvent::TxAbort, what);
    obs::tail::noteTxCause(what);
    d.roPromote = true;
    throw TxAbort{};
}

} // namespace detail

namespace detail
{

void
handleRetry(Runtime &rt, TxDesc &d)
{
    // Snapshot the commit clocks before releasing anything, so a
    // commit that lands during our rollback is not missed.
    TxDomain &dom = d.dom();
    const std::uint64_t clock_then =
        dom.clock.load(std::memory_order_acquire);
    const std::uint64_t seq_then =
        dom.norecSeq.load(std::memory_order_acquire);

    const bool was_ro_fast = d.roFast;
    d.roFast = false;
    rt.algo().rollback(rt, d);
    d.unpublishStart();
    if (rt.cfg().useSerialLock)
        dom.serialLock.readUnlock();
    opacity::finishRecord(d, /*committed=*/false, /*serial=*/false,
                          was_ro_fast);
    d.state = RunState::Inactive;
    d.nesting = 0;
    for (void *p : d.abortFrees)
        std::free(p);
    d.abortFrees.clear();
    d.commitFrees.clear();
    d.onAbortHandlers.runAndClear();
    d.onCommitHandlers.clear();
    d.stats.total.retries++;
    d.stats.site(d.attr).retries++;

    // Wait for any writer commit in this domain. A full implementation
    // would watch only the read set's orecs; waiting on the domain
    // clocks is the simple, conservative version (cf. NOrec-style
    // retry). Foreign-domain commits cannot change anything this
    // transaction read, so they rightly do not wake it.
    for (;;) {
        if (dom.clock.load(std::memory_order_acquire) != clock_then ||
            dom.norecSeq.load(std::memory_order_acquire) != seq_then)
            break;
        std::this_thread::yield();
    }
    // Closed after the wait: the blocked time is the retry's cost,
    // and the tail span chain must show where it went.
    obs::tail::noteTxEnd(obs::tail::TxOutcome::Retry, false);
}

} // namespace detail

void
retry(TxDesc &d)
{
    if (d.nesting == 0)
        panic("tm::retry() outside a transaction");
    if (d.state == RunState::SerialIrrevocable) {
        panic("tm::retry() in serial-irrevocable transaction '%s': an "
              "irrevocable transaction excludes the commits it would "
              "wait for",
              d.attr ? d.attr->name : "?");
    }
    throw TxRetry{};
}

void
unsafeOp(TxDesc &d, const char *what)
{
    if (d.nesting == 0)
        return;  // Non-transactional context: nothing to do.
    if (d.kind == TxnKind::Atomic) {
        panic("atomic transaction '%s' attempted unsafe operation '%s' "
              "(the specification rejects this statically)",
              d.attr ? d.attr->name : "?", what);
    }
    if (d.state == RunState::SerialIrrevocable)
        return;  // Already irrevocable.

    // GCC's in-flight switch: abort the speculative attempt and restart
    // the transaction serially (paper Section 3.3).
    if (d.serialCause == SerialCause::None ||
        d.serialCause == SerialCause::Start) {
        d.serialCause = SerialCause::InFlight;
    }
    // Record what forced the switch (the diagnostic the paper had to
    // build into GCC via execinfo).
    obs::traceRecord(obs::TraceEvent::TxSerialSwitch, what);
    obs::tail::noteTxCause(what);
    d.stats.switchBlame[d.attr][what]++;
    d.pendingSerialRestart = true;
    d.abortIsSwitch = true;
    throw TxAbort{};
}

void
noteCall(TxDesc &d, FnAttr fn_attr, const char *name)
{
    if (d.nesting == 0)
        return;
    switch (fn_attr) {
      case FnAttr::Safe:
      case FnAttr::Callable:
      case FnAttr::Pure:
        return;
      case FnAttr::Unannotated:
        if (!Runtime::get().cfg().inferCallableSafety)
            unsafeOp(d, name);
        return;
    }
}

// ---------------------------------------------------------------------
// Handler and allocation API
// ---------------------------------------------------------------------

void
onCommit(TxDesc &d, std::function<void()> fn)
{
    if (d.nesting == 0) {
        fn();  // Outside a transaction: run immediately.
        return;
    }
    if (d.roFast)
        detail::promoteRoFast(d, "tm::onCommit");
    d.onCommitHandlers.push(std::move(fn));
}

void
onAbort(TxDesc &d, std::function<void()> fn)
{
    if (d.nesting == 0)
        return;
    if (d.roFast)
        detail::promoteRoFast(d, "tm::onAbort");
    d.onAbortHandlers.push(std::move(fn));
}

void *
txMalloc(TxDesc &d, std::size_t bytes)
{
    void *p = txTryMalloc(d, bytes);
    if (p == nullptr)
        fatal("txMalloc: out of memory (%zu bytes)", bytes);
    return p;
}

void *
txTryMalloc(TxDesc &d, std::size_t bytes)
{
    void *p = std::malloc(bytes);
    if (p == nullptr)
        return nullptr;
    if (d.nesting > 0 && d.state == RunState::Speculative)
        d.abortFrees.push_back(p);
    return p;
}

void
txFree(TxDesc &d, void *ptr)
{
    if (ptr == nullptr)
        return;
    if (d.nesting == 0) {
        std::free(ptr);
        return;
    }
    // A deferred free relies on commit-time quiescence to wait out
    // doomed readers; the fast path skips quiescence, so it cannot
    // safely reclaim shared memory.
    if (d.roFast)
        detail::promoteRoFast(d, "tm::txFree");
    d.commitFrees.push_back(ptr);
}

// ---------------------------------------------------------------------
// Byte-granular transactional access
// ---------------------------------------------------------------------

void
txLoadBytes(TxDesc &d, void *dst, const void *src, std::size_t n)
{
    if (d.nesting == 0 || d.state == RunState::Inactive)
        panic("txLoadBytes outside a transaction");
    Runtime &rt = Runtime::get();
    auto *out = static_cast<unsigned char *>(dst);
    std::uintptr_t cur = reinterpret_cast<std::uintptr_t>(src);
    std::size_t remaining = n;
    while (remaining > 0) {
        const std::uintptr_t base = cur & ~std::uintptr_t{wordBytes - 1};
        const std::size_t off = cur - base;
        const std::size_t len = std::min(wordBytes - off, remaining);
        const std::uint64_t w = detail::loadWordDispatch(rt, d, base);
        std::memcpy(out, reinterpret_cast<const char *>(&w) + off, len);
        out += len;
        cur += len;
        remaining -= len;
    }
}

void
txStoreBytes(TxDesc &d, void *dst, const void *src, std::size_t n)
{
    if (d.nesting == 0 || d.state == RunState::Inactive)
        panic("txStoreBytes outside a transaction");
    Runtime &rt = Runtime::get();
    const auto *in = static_cast<const unsigned char *>(src);
    std::uintptr_t cur = reinterpret_cast<std::uintptr_t>(dst);
    std::size_t remaining = n;
    while (remaining > 0) {
        const std::uintptr_t base = cur & ~std::uintptr_t{wordBytes - 1};
        const std::size_t off = cur - base;
        const std::size_t len = std::min(wordBytes - off, remaining);
        std::uint64_t w = 0;
        std::memcpy(reinterpret_cast<char *>(&w) + off, in, len);
        detail::storeWordDispatch(rt, d, base, w, byteMask(off, len));
        in += len;
        cur += len;
        remaining -= len;
    }
}

} // namespace tmemc::tm
