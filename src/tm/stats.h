/**
 * @file
 * Transaction statistics, including the serialization-cause taxonomy
 * the paper reports in Tables 1-4.
 *
 * Counters are kept per thread (padded, no sharing on the hot path) and
 * aggregated on demand. In addition to global counters we keep a
 * per-site profile keyed by TxnAttr address; this stands in for the
 * execinfo-based profiling extension the authors added to GCC's TM
 * ("Expect Limited Tool Support", Section 6).
 */

#ifndef TMEMC_TM_STATS_H
#define TMEMC_TM_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "tm/attr.h"

namespace tmemc::tm
{

/** Counter block; one per thread and one per (thread, site). */
struct StatBlock
{
    std::uint64_t txns = 0;            //!< Top-level transactions begun.
    std::uint64_t commits = 0;         //!< Top-level commits.
    std::uint64_t aborts = 0;          //!< Rollbacks (all causes).
    std::uint64_t startSerial = 0;     //!< Began in serial mode.
    std::uint64_t inflightSwitch = 0;  //!< Switched to serial mid-flight.
    std::uint64_t abortSerial = 0;     //!< Serialized for progress by CM.
    std::uint64_t serialCommits = 0;   //!< Commits that ran serial.
    std::uint64_t readOnlyCommits = 0; //!< Commits with empty write set.
    std::uint64_t roFastCommits = 0;   //!< Invisible-reader fast commits.
    std::uint64_t roPromotions = 0;    //!< Fast-path attempts promoted.
    std::uint64_t retries = 0;         //!< tm::retry() waits.

    /** Accumulate another block into this one. */
    void
    add(const StatBlock &o)
    {
        txns += o.txns;
        commits += o.commits;
        aborts += o.aborts;
        startSerial += o.startSerial;
        inflightSwitch += o.inflightSwitch;
        abortSerial += o.abortSerial;
        serialCommits += o.serialCommits;
        readOnlyCommits += o.readOnlyCommits;
        roFastCommits += o.roFastCommits;
        roPromotions += o.roPromotions;
        retries += o.retries;
    }
};

/** Per-thread statistics, attached to a TxDesc. */
struct ThreadStats
{
    StatBlock total;
    /** Per-site profile; TxnAttr instances are static, so keying on
     *  the pointer is stable. Only touched outside the measurement
     *  fast path at begin/commit/abort. */
    std::map<const TxnAttr *, StatBlock> perSite;

    /**
     * Serialization blame: for each site, how many in-flight switches
     * each unsafe operation caused. This is the diagnostic the paper's
     * authors had to hack into GCC with execinfo ("manually diagnosing
     * the causes of aborts and serialization ... was challenging").
     * Keys are the string literals passed to unsafeOp().
     */
    std::map<const TxnAttr *, std::map<const char *, std::uint64_t>>
        switchBlame;

    StatBlock &
    site(const TxnAttr *attr)
    {
        return perSite[attr];
    }
};

/** Aggregated snapshot across all registered threads. */
struct StatsSnapshot
{
    StatBlock total;
    std::map<const TxnAttr *, StatBlock> perSite;
    std::map<const TxnAttr *, std::map<const char *, std::uint64_t>>
        switchBlame;

    /** Per-thread abort counts; Figure 11's commentary uses the
     *  cross-thread variance in abort rate. */
    std::vector<std::uint64_t> abortsPerThread;
    std::vector<std::uint64_t> commitsPerThread;

    /** Render the Tables 1-4 row for this snapshot. */
    std::string formatTableRow(const std::string &branch_name) const;

    /** Render the full per-site profile (tool-support substitute). */
    std::string formatProfile() const;

    /** Render the per-site serialization-blame report: which unsafe
     *  operation forced each site's in-flight switches. */
    std::string formatBlame() const;
};

} // namespace tmemc::tm

#endif // TMEMC_TM_STATS_H
