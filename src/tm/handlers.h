/**
 * @file
 * onCommit / onAbort handler registries (the GCC extension the paper
 * relies on in Section 3.5 to move I/O and sem_post out of
 * transactions).
 *
 * onCommit handlers run after the transaction commits and has released
 * every lock (including the global serial lock), in registration order.
 * onAbort handlers run after a rollback has undone all memory effects,
 * before the retry. Handlers registered by a nested (flattened)
 * transaction belong to the outermost one.
 */

#ifndef TMEMC_TM_HANDLERS_H
#define TMEMC_TM_HANDLERS_H

#include <functional>
#include <utility>
#include <vector>

namespace tmemc::tm
{

/** Deferred-action list for one transaction attempt. */
class HandlerList
{
  public:
    /** Register a handler to run later. */
    void
    push(std::function<void()> fn)
    {
        handlers_.push_back(std::move(fn));
    }

    /** Run all handlers in registration order, then clear. */
    void
    runAndClear()
    {
        // Handlers may register further transactions but not further
        // handlers on this list; swap out first so that is safe.
        std::vector<std::function<void()>> local;
        local.swap(handlers_);
        for (auto &fn : local)
            fn();
    }

    /** Drop all handlers without running them. */
    void clear() { handlers_.clear(); }

    bool empty() const { return handlers_.empty(); }
    std::size_t size() const { return handlers_.size(); }

  private:
    std::vector<std::function<void()>> handlers_;
};

} // namespace tmemc::tm

#endif // TMEMC_TM_HANDLERS_H
