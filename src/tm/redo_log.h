/**
 * @file
 * Masked redo log for buffered-update algorithms (Lazy, NOrec).
 *
 * Entries are word-granular with byte-enable masks. The paper notes
 * that buffering byte-by-byte stores (tm_memcpy) and later reading them
 * back as words "necessitated an expensive logging mechanism" — this is
 * that mechanism: a vector of entries plus an open-addressing index so
 * read-after-write lookups are O(1) rather than a scan.
 */

#ifndef TMEMC_TM_REDO_LOG_H
#define TMEMC_TM_REDO_LOG_H

#include <cstdint>
#include <vector>

#include "common/compiler.h"
#include "tm/raw.h"

namespace tmemc::tm
{

/** One buffered word write. */
struct RedoEntry
{
    std::uintptr_t wordAddr;  //!< Aligned base address of the word.
    std::uint64_t value;      //!< Buffered bytes (valid where mask set).
    std::uint64_t mask;       //!< Byte-enable mask.
};

/** Word-granular write buffer with O(1) lookup. */
class RedoLog
{
  public:
    RedoLog() { rebuildIndex(64); }

    /** Buffer @p val's @p mask bytes for the word at @p word_addr. */
    void
    insert(std::uintptr_t word_addr, std::uint64_t val, std::uint64_t mask)
    {
        std::size_t slot = findSlot(word_addr);
        if (index_[slot].addr == word_addr) {
            RedoEntry &e = entries_[index_[slot].pos];
            e.value = maskMerge(e.value, val, mask);
            e.mask |= mask;
            return;
        }
        entries_.push_back({word_addr, val & mask, mask});
        index_[slot] = {word_addr, entries_.size() - 1};
        if (++population_ * 2 > index_.size())
            rebuildIndex(index_.size() * 2);
    }

    /**
     * Look up buffered bytes for @p word_addr.
     * @param[out] val  Buffered value (only mask bytes valid).
     * @param[out] mask Byte-enable mask of buffered bytes.
     * @return true if any bytes of the word are buffered.
     */
    TMEMC_ALWAYS_INLINE bool
    lookup(std::uintptr_t word_addr, std::uint64_t &val,
           std::uint64_t &mask) const
    {
        if (entries_.empty())
            return false;
        const std::size_t slot = findSlot(word_addr);
        if (index_[slot].addr != word_addr)
            return false;
        const RedoEntry &e = entries_[index_[slot].pos];
        val = e.value;
        mask = e.mask;
        return true;
    }

    /** All buffered entries, in insertion order. */
    const std::vector<RedoEntry> &entries() const { return entries_; }

    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }

    /** Discard all buffered writes (abort or commit completion). */
    void
    clear()
    {
        entries_.clear();
        population_ = 0;
        for (auto &s : index_)
            s = {0, 0};
    }

  private:
    struct Slot
    {
        std::uintptr_t addr = 0;  //!< 0 means empty (address 0 unused).
        std::size_t pos = 0;
    };

    std::size_t
    findSlot(std::uintptr_t addr) const
    {
        std::size_t h = (addr >> 3) * 0x9e3779b97f4a7c15ull;
        std::size_t slot = h & (index_.size() - 1);
        while (index_[slot].addr != 0 && index_[slot].addr != addr)
            slot = (slot + 1) & (index_.size() - 1);
        return slot;
    }

    void
    rebuildIndex(std::size_t new_size)
    {
        index_.assign(new_size, Slot{});
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            const std::size_t slot = findSlot(entries_[i].wordAddr);
            index_[slot] = {entries_[i].wordAddr, i};
        }
    }

    std::vector<RedoEntry> entries_;
    std::vector<Slot> index_;
    std::size_t population_ = 0;
};

} // namespace tmemc::tm

#endif // TMEMC_TM_REDO_LOG_H
