/**
 * @file
 * Statistics formatting: the Tables 1-4 row renderer and the per-site
 * profile report.
 */

#include "tm/stats.h"

#include <cstdio>
#include <sstream>

namespace tmemc::tm
{

namespace
{

/** Render "count (pct%)" in the paper's table style. */
std::string
countWithPct(std::uint64_t count, std::uint64_t denom)
{
    char buf[64];
    if (denom == 0) {
        std::snprintf(buf, sizeof(buf), "%llu",
                      static_cast<unsigned long long>(count));
    } else {
        std::snprintf(buf, sizeof(buf), "%llu (%.1f%%)",
                      static_cast<unsigned long long>(count),
                      100.0 * static_cast<double>(count) /
                          static_cast<double>(denom));
    }
    return buf;
}

} // namespace

std::string
StatsSnapshot::formatTableRow(const std::string &branch_name) const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-16s %12llu %18s %18s %12llu",
                  branch_name.c_str(),
                  static_cast<unsigned long long>(total.txns),
                  countWithPct(total.inflightSwitch, total.txns).c_str(),
                  countWithPct(total.startSerial, total.txns).c_str(),
                  static_cast<unsigned long long>(total.abortSerial));
    return buf;
}

std::string
StatsSnapshot::formatBlame() const
{
    std::ostringstream os;
    os << "serialization blame (unsafe op -> in-flight switches):\n";
    bool any = false;
    for (const auto &[attr, causes] : switchBlame) {
        for (const auto &[what, count] : causes) {
            char buf[160];
            std::snprintf(buf, sizeof(buf), "  %-36s %-20s %10llu\n",
                          attr->name, what,
                          static_cast<unsigned long long>(count));
            os << buf;
            any = true;
        }
    }
    if (!any)
        os << "  (no in-flight switches)\n";
    return os.str();
}

std::string
StatsSnapshot::formatProfile() const
{
    std::ostringstream os;
    os << "per-site transaction profile (execinfo-substitute):\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  %-40s %10s %10s %10s %8s %8s %8s\n", "site", "txns",
                  "commits", "aborts", "startS", "inflight", "abortS");
    os << buf;
    for (const auto &[attr, b] : perSite) {
        std::snprintf(buf, sizeof(buf),
                      "  %-40s %10llu %10llu %10llu %8llu %8llu %8llu\n",
                      attr->name,
                      static_cast<unsigned long long>(b.txns),
                      static_cast<unsigned long long>(b.commits),
                      static_cast<unsigned long long>(b.aborts),
                      static_cast<unsigned long long>(b.startSerial),
                      static_cast<unsigned long long>(b.inflightSwitch),
                      static_cast<unsigned long long>(b.abortSerial));
        os << buf;
    }
    return os.str();
}

} // namespace tmemc::tm
