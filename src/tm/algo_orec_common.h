/**
 * @file
 * Helpers shared by the orec-based algorithms (GccEager and Lazy):
 * read-set validation, timestamp extension, and the common rollback.
 *
 * Validation treats an orec locked by the validating transaction as
 * consistent: a write lock can only have been acquired while the
 * orec's version was <= the transaction's (possibly extended) start
 * time, and any intervening commit would have changed the recorded
 * snapshot word and failed the equality test first.
 */

#ifndef TMEMC_TM_ALGO_OREC_COMMON_H
#define TMEMC_TM_ALGO_OREC_COMMON_H

#include <atomic>

#include "tm/algo.h"
#include "tm/runtime.h"

namespace tmemc::tm
{

/** Check every read-set entry is still the word observed at read. */
inline bool
validateReadSet(TxDesc &d)
{
    for (const ReadEntry &e : d.readSet) {
        const std::uint64_t cur = e.orec->load(std::memory_order_acquire);
        if (cur == e.word)
            continue;
        const OrecSnapshot snap{cur};
        if (snap.locked() && snap.owner() == &d)
            continue;
        return false;
    }
    return true;
}

/**
 * Timestamp extension (TinySTM style): advance the transaction's start
 * time to now if its reads are all still valid.
 * @return false if the transaction is doomed and must abort.
 */
inline bool
extendStartTime(Runtime &rt, TxDesc &d)
{
    const std::uint64_t now = d.dom().clock.load(std::memory_order_acquire);
    if (!validateReadSet(d))
        return false;
    d.startTime = now;
    d.publishStart(now);
    return true;
}

/**
 * Common rollback for orec-based algorithms: reverse-apply the undo
 * log (GccEager; empty for Lazy), then release write locks restoring
 * their pre-lock words.
 */
inline void
orecRollback(Runtime &rt, TxDesc &d)
{
    for (auto it = d.undoLog.rbegin(); it != d.undoLog.rend(); ++it)
        rawStore(reinterpret_cast<void *>(it->wordAddr), it->oldValue);
    for (const LockEntry &le : d.writeLocks)
        le.orec->store(le.prevWord, std::memory_order_release);
    d.clearSets();
}

} // namespace tmemc::tm

#endif // TMEMC_TM_ALGO_OREC_COMMON_H
