/**
 * @file
 * Contention managers (paper Section 4 / Figure 11).
 *
 * The contention manager decides what a transaction does around aborts:
 * nothing (NoCM), wait (Backoff), serialize for progress (SerialAfterN,
 * GCC's default policy of becoming serial after 100 consecutive
 * aborts), or block the rest of the world until the starving
 * transaction commits (Hourglass, after Fich et al. and Liu & Spear's
 * "toxic transactions").
 */

#ifndef TMEMC_TM_CM_H
#define TMEMC_TM_CM_H

#include "tm/txdesc.h"

namespace tmemc::tm
{

class Runtime;

/** Abstract contention manager. */
class ContentionManager
{
  public:
    virtual ~ContentionManager() = default;

    /** Stable name for reports. */
    virtual const char *name() const = 0;

    /** Called before every (re)begin; may block (Hourglass). */
    virtual void beforeBegin(Runtime &rt, TxDesc &d) {}

    /**
     * Called after a conflict abort has been rolled back.
     * @return true if the retry must run in serial-irrevocable mode.
     */
    virtual bool afterAbort(Runtime &rt, TxDesc &d) { return false; }

    /** Called after a successful commit. */
    virtual void afterCommit(Runtime &rt, TxDesc &d) {}
};

/** Singleton accessors (defined in cm.cc). */
ContentionManager &noCm();
ContentionManager &backoffCm();
ContentionManager &hourglassCm();
ContentionManager &serialAfterNCm();

/** Resolve a CmKind to its singleton. */
ContentionManager &cmFor(CmKind kind);

} // namespace tmemc::tm

#endif // TMEMC_TM_CM_H
