/**
 * @file
 * Strict-mode runtime cross-check for the tmlint static rules.
 *
 * tools/tmlint enforces the Draft C++ TM Specification's discipline at
 * the source level, but a library STM has holes a source checker
 * cannot close: template-parameter callables are resolved per
 * instantiation, and nothing stops a future call path from routing an
 * uninstrumented context into code running under a transaction.
 *
 * TMEMC_TM_STRICT (a CMake option, off by default) closes the loop at
 * runtime: while the calling thread is inside a *speculative*
 * transaction attempt, any access through an uninstrumented fast path
 * — PlainCtx loads/stores, or the shared-state entry points of
 * slabs.h / assoc.h / lru.h reached with a non-transactional context —
 * panics with a flight-recorder dump. Serial-irrevocable execution is
 * exempt: once a transaction holds the serial lock exclusively, direct
 * access is exactly what GCC's runtime does too, and it is the legal
 * landing spot of the unsafeOp() in-flight switch.
 *
 * The static rules and this check agree on what "safe" means: tmlint's
 * TM1 ("raw shared access in a checked transaction body") is the
 * compile-time face of the same invariant this guard enforces on the
 * paths the checker had to trust.
 *
 * Cost: when the option is off, every guard compiles to nothing. When
 * on, a guard is one thread-local read and a predictable branch.
 */

#ifndef TMEMC_TM_STRICT_H
#define TMEMC_TM_STRICT_H

#include <type_traits>

#include "common/compiler.h"

#ifndef TMEMC_TM_STRICT
#  define TMEMC_TM_STRICT 0
#endif

namespace tmemc::tm::strict
{

/**
 * Does @p Ctx perform instrumented accesses? The convention: every
 * transactional context exposes its descriptor as a public member
 * named `tx` (mc::TmCtx does); uninstrumented contexts do not.
 */
template <typename Ctx, typename = void>
struct IsInstrumentedCtx : std::false_type
{
};

template <typename Ctx>
struct IsInstrumentedCtx<Ctx,
                         std::void_t<decltype(std::declval<Ctx &>().tx)>>
    : std::true_type
{
};

#if TMEMC_TM_STRICT

/** True while this thread is in a speculative transaction attempt
 *  (atomic or relaxed — both forbid uninstrumented shared access;
 *  serial-irrevocable mode is exempt). */
bool inSpeculativeTx();

/** Report a strict-mode violation: the word at @p addr was touched
 *  through @p what without a TxDesc while a speculative transaction
 *  was running. Dumps the flight recorder, then panics. */
[[noreturn]] void violation(const void *addr, const char *what);

/** Guard body shared by the macros below. */
TMEMC_ALWAYS_INLINE void
checkRaw(const void *addr, const char *what)
{
    if (TMEMC_UNLIKELY(inSpeculativeTx()))
        violation(addr, what);
}

#endif // TMEMC_TM_STRICT

} // namespace tmemc::tm::strict

#if TMEMC_TM_STRICT
/** Guard one uninstrumented access to a known-shared word. */
#  define TMEMC_STRICT_RAW(addr, what)                                      \
      ::tmemc::tm::strict::checkRaw(addr, what)
/** Guard a shared-state entry point generic over the memory context:
 *  fires only for uninstrumented contexts. */
#  define TMEMC_STRICT_SHARED_ENTRY(c, addr, what)                          \
      do {                                                                  \
          if constexpr (!::tmemc::tm::strict::IsInstrumentedCtx<            \
                            std::decay_t<decltype(c)>>::value)              \
              ::tmemc::tm::strict::checkRaw(addr, what);                    \
      } while (0)
#else
#  define TMEMC_STRICT_RAW(addr, what) ((void)0)
#  define TMEMC_STRICT_SHARED_ENTRY(c, addr, what) ((void)0)
#endif

#endif // TMEMC_TM_STRICT_H
