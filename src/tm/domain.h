/**
 * @file
 * Transaction domain: one independent synchronization scope for the TM
 * runtime — a commit clock, a NOrec sequence lock, a readers/writer
 * serialization lock, an hourglass neck, and an ownership-record table.
 *
 * The runtime's historical singleton state is simply its *home* domain;
 * additional domains can be created by subsystems that partition their
 * data (the sharded cache gives each shard one), so that transactions
 * on different partitions never conflict on orecs, never contend on the
 * serial lock, and never advance each other's clocks.
 *
 * Correctness contract: a datum must only ever be accessed through ONE
 * domain. Domains provide isolation between disjoint heaps, not between
 * arbitrary transactions — two transactions in different domains that
 * touch the same word race exactly as unsynchronized code would.
 */

#ifndef TMEMC_TM_DOMAIN_H
#define TMEMC_TM_DOMAIN_H

#include <atomic>
#include <cstdint>
#include <memory>

#include "tm/orec.h"
#include "tm/serial_lock.h"

namespace tmemc::tm
{

class TxDesc;

/** One independent TM synchronization scope. */
class TxDomain
{
  public:
    /** @param orec_bits log2 of the ownership-record table size. */
    explicit TxDomain(std::uint32_t orec_bits)
        : orecs_(std::make_unique<OrecTable>(orec_bits))
    {
    }

    TxDomain(const TxDomain &) = delete;
    TxDomain &operator=(const TxDomain &) = delete;

    /**
     * Commit-timestamp clock (GccEager / Lazy / RA). Ordering
     * contract: begin snapshots load it with acquire; GccEager/Lazy
     * advance it with an acq_rel fetch_add, RA with a release-only
     * fetch_add (the clock only orders snapshots there — data
     * visibility rides on the orec release/acquire pairs).
     */
    // atom-protocol: release-acquire-pair
    std::atomic<std::uint64_t> clock{0};
    /** Sequence lock (NOrec). */
    // atom-protocol: seqlock
    std::atomic<std::uint64_t> norecSeq{0};
    /** Readers/writer serialization lock. */
    SerialLock serialLock;
    /** Hourglass neck: when set, only the owner may begin. */
    // atom-protocol: release-acquire-pair
    std::atomic<TxDesc *> toxic{nullptr};

    /** Ownership-record table. */
    OrecTable &orecs() { return *orecs_; }

    /** Reset clocks and rebuild the orec table (reconfiguration). */
    void
    reset(std::uint32_t orec_bits)
    {
        orecs_ = std::make_unique<OrecTable>(orec_bits);
        // Reconfiguration runs quiesced; release is free here and
        // keeps the words at their protocol's store minimum.
        clock.store(0, std::memory_order_release);
        norecSeq.store(0, std::memory_order_release);
        toxic.store(nullptr, std::memory_order_release);
    }

  private:
    std::unique_ptr<OrecTable> orecs_;
};

/**
 * The calling thread's ambient domain: transactions started while a
 * DomainScope is live run in its domain; otherwise in the runtime's
 * home domain. Nested transactions always join the enclosing one
 * regardless of any scope in effect.
 */
TxDomain *currentDomain();

/** RAII ambient-domain setter (nullptr restores the home domain). */
class DomainScope
{
  public:
    explicit DomainScope(TxDomain *domain);
    ~DomainScope();

    DomainScope(const DomainScope &) = delete;
    DomainScope &operator=(const DomainScope &) = delete;

  private:
    TxDomain *prev_;
};

} // namespace tmemc::tm

#endif // TMEMC_TM_DOMAIN_H
