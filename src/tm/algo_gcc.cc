/**
 * @file
 * The "GCC" algorithm: the default libitm method the paper measures.
 *
 * Direct update (writes go to program memory immediately, guarded by an
 * undo log), eager write locking on ownership records, timestamp-based
 * read validation against a global commit clock, and commit-time
 * quiescence for privatization safety — the Draft C++ TM Specification
 * requires privatization safety, and the paper's Figure 1 discussion
 * relies on it.
 *
 * The paper observes that this algorithm has "the lowest latency and
 * the best scalability" of those tested, "despite extremely high abort
 * rates", because aborts pay for the undo log but commits are cheap.
 */

#include <atomic>

#include "tm/algo_orec_common.h"

namespace tmemc::tm
{

namespace
{

class GccEagerAlgo : public Algo
{
  public:
    const char *name() const override { return "gcc-eager"; }

    void
    begin(Runtime &rt, TxDesc &d) override
    {
        d.startTime = d.dom().clock.load(std::memory_order_acquire);
        d.publishStart(d.startTime);
    }

    bool
    beginRO(Runtime &rt, TxDesc &d) override
    {
        begin(rt, d);
        return true;
    }

    std::uint64_t
    loadWordRO(Runtime &rt, TxDesc &d, std::uintptr_t word_addr) override
    {
        // Invisible reader: the orec double-check proves the word was
        // stable at a version <= startTime, so every load on the
        // attempt sees the same snapshot without a read set. A newer
        // version aborts — with no read set there is nothing to
        // revalidate at an extended start time.
        OrecWord &o = d.dom().orecs().forWord(word_addr);
        for (;;) {
            const std::uint64_t w1 = o.load(std::memory_order_acquire);
            const OrecSnapshot s1{w1};
            if (s1.locked())
                throw TxAbort{};  // Fast path never holds write locks.
            const std::uint64_t val =
                rawLoad(reinterpret_cast<void *>(word_addr));
            std::atomic_thread_fence(std::memory_order_acquire);
            // atom-allow: relaxed re-read ordered by the fence above
            if (o.load(std::memory_order_relaxed) != w1)
                continue;  // Raced with a commit; re-sample.
            if (s1.version() > d.startTime)
                throw TxAbort{};
            return val;
        }
    }

    std::uint64_t
    loadWord(Runtime &rt, TxDesc &d, std::uintptr_t word_addr) override
    {
        OrecWord &o = d.dom().orecs().forWord(word_addr);
        for (;;) {
            const std::uint64_t w1 = o.load(std::memory_order_acquire);
            const OrecSnapshot s1{w1};
            if (s1.locked()) {
                if (s1.owner() == &d)
                    return rawLoad(reinterpret_cast<void *>(word_addr));
                throw TxAbort{};  // Write-locked by a concurrent txn.
            }
            const std::uint64_t val =
                rawLoad(reinterpret_cast<void *>(word_addr));
            std::atomic_thread_fence(std::memory_order_acquire);
            // atom-allow: relaxed re-read ordered by the fence above
            const std::uint64_t w2 = o.load(std::memory_order_relaxed);
            if (w1 != w2)
                continue;  // Raced with a commit; re-sample.
            if (s1.version() > d.startTime && !extendStartTime(rt, d))
                throw TxAbort{};
            d.readSet.push_back({&o, w1});
            return val;
        }
    }

    void
    storeWord(Runtime &rt, TxDesc &d, std::uintptr_t word_addr,
              std::uint64_t val, std::uint64_t mask) override
    {
        OrecWord &o = d.dom().orecs().forWord(word_addr);
        std::uint64_t w = o.load(std::memory_order_acquire);
        const OrecSnapshot snap{w};
        if (snap.locked()) {
            if (snap.owner() != &d)
                throw TxAbort{};
        } else {
            if (snap.version() > d.startTime) {
                if (!extendStartTime(rt, d))
                    throw TxAbort{};
                w = o.load(std::memory_order_acquire);
                const OrecSnapshot again{w};
                if (again.locked() || again.version() > d.startTime)
                    throw TxAbort{};
            }
            if (!o.compare_exchange_strong(w, orecLockWord(&d),
                                           std::memory_order_acq_rel))
                throw TxAbort{};
            d.writeLocks.push_back({&o, w});
        }
        void *p = reinterpret_cast<void *>(word_addr);
        const std::uint64_t old = rawLoad(p);
        d.undoLog.push_back({word_addr, old});
        rawStore(p, maskMerge(old, val, mask));
    }

    std::uint64_t
    commit(Runtime &rt, TxDesc &d) override
    {
        if (d.writeLocks.empty()) {
            // Read-only: every read was individually validated against
            // startTime, so the read set is a consistent snapshot.
            d.clearSets();
            return 0;
        }
        const std::uint64_t end =
            d.dom().clock.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (end != d.startTime + 1 && !validateReadSet(d))
            throw TxAbort{};  // handleAbort() runs rollback().
        for (const LockEntry &le : d.writeLocks) {
            le.orec->store(orecVersionWord(end),
                           std::memory_order_release);
        }
        d.clearSets();
        // Privatization safety: the orchestration quiesces on `end`
        // before the caller can treat written data as private.
        return end;
    }

    void
    rollback(Runtime &rt, TxDesc &d) override
    {
        orecRollback(rt, d);
    }

    bool
    isReadOnly(const TxDesc &d) const override
    {
        return d.writeLocks.empty() && d.undoLog.empty();
    }
};

GccEagerAlgo gAlgo;

} // namespace

Algo &
gccEagerAlgo()
{
    return gAlgo;
}

} // namespace tmemc::tm
