/**
 * @file
 * Opacity history recorder implementation (see opacity.h).
 */

#include "tm/opacity.h"

#include <mutex>
#include <utility>

#include "tm/txdesc.h"

namespace tmemc::tm::opacity
{

// atom-protocol: relaxed-ok(written under gRecordsLock; lock-free
// readers tag records and finishRecord revalidates under the lock)
std::atomic<std::uint64_t> gEpoch{0};

namespace
{

// atom-protocol: release-acquire-pair
std::atomic<std::uint64_t> gStamp{0};
// atom-protocol: relaxed-ok(sticky overflow flag, read after join)
std::atomic<bool> gOverflow{false};

std::mutex gRecordsLock;
std::vector<TxRecord> gRecords;

/** Current epoch, read under gRecordsLock (writers hold the lock). */
std::uint64_t
lockedEpoch()
{
    return gEpoch.load(std::memory_order_relaxed);
}

} // namespace

void
arm()
{
    std::lock_guard<std::mutex> guard(gRecordsLock);
    gRecords.clear();
    gOverflow.store(false, std::memory_order_relaxed);
    // Advance to the next ODD value: one step if disarmed, two if a
    // caller re-arms without collecting (stays armed, new window).
    const std::uint64_t e = lockedEpoch();
    gEpoch.store(e + 1 + (e & 1), std::memory_order_relaxed);
}

std::vector<TxRecord>
collect()
{
    std::lock_guard<std::mutex> guard(gRecordsLock);
    const std::uint64_t e = lockedEpoch();
    if ((e & 1) != 0)
        gEpoch.store(e + 1, std::memory_order_relaxed);  // Disarm.
    return std::exchange(gRecords, {});
}

bool
overflowed()
{
    return gOverflow.load(std::memory_order_relaxed);
}

std::uint64_t
nextStamp()
{
    // Single-location RMW: modification order == real-time order of
    // the stamping operations, which is all the checker relies on.
    return gStamp.fetch_add(1, std::memory_order_acq_rel);
}

void
noteAccess(TxDesc &d, bool is_write, std::uintptr_t addr,
           std::uint64_t value, std::uint64_t mask)
{
    if (d.opAccesses.size() >= kMaxAccessesPerTx) {
        // Drop the whole attempt: a truncated access log would make
        // the record lie about the attempt's footprint. Only poison
        // the window the attempt belongs to — a straggler from an
        // already-collected window must not flag the current one.
        {
            std::lock_guard<std::mutex> guard(gRecordsLock);
            if (d.opEpoch == lockedEpoch())
                gOverflow.store(true, std::memory_order_relaxed);
        }
        d.opRecording = false;
        d.opAccesses.clear();
        return;
    }
    d.opAccesses.push_back({is_write, addr, value, mask});
}

void
beginRecord(TxDesc &d)
{
    // One load gives a consistent (armed, window) pair: odd = armed,
    // and the value doubles as the window tag finishRecord checks.
    const std::uint64_t e = gEpoch.load(std::memory_order_relaxed);
    d.opRecording = (e & 1) != 0;
    if (!d.opRecording)
        return;
    d.opEpoch = e;
    d.opAccesses.clear();
    d.opBegin = nextStamp();
}

void
finishRecord(TxDesc &d, bool committed, bool serial, bool ro_fast)
{
    if (!d.opRecording)
        return;
    d.opRecording = false;
    TxRecord rec;
    rec.begin = d.opBegin;
    rec.end = nextStamp();
    rec.committed = committed;
    rec.serial = serial;
    rec.roFast = ro_fast;
    rec.threadId = d.threadId;
    rec.site = d.attr != nullptr ? d.attr->name : "?";
    rec.domainTag = &d.dom();
    rec.accesses = std::move(d.opAccesses);
    d.opAccesses = {};
    std::lock_guard<std::mutex> guard(gRecordsLock);
    if (d.opEpoch != lockedEpoch())
        return;  // Stale straggler from an already-closed window.
    if (gRecords.size() >= kMaxRecords) {
        gOverflow.store(true, std::memory_order_relaxed);
        return;
    }
    gRecords.push_back(std::move(rec));
}

} // namespace tmemc::tm::opacity
