/**
 * @file
 * STM algorithm interface.
 *
 * Each algorithm is a stateless singleton operating on TxDesc state;
 * global shared metadata (orec table, clocks) lives in the Runtime.
 * Dispatch is virtual: a transactional load/store is an indirect
 * function call, matching the cost structure of GCC's libitm dispatch
 * table that the paper measures.
 *
 * Contract: any member that detects a conflict throws TxAbort *after*
 * leaving the descriptor in a state from which rollback() can fully
 * clean up (undo applied writes, release held locks).
 */

#ifndef TMEMC_TM_ALGO_H
#define TMEMC_TM_ALGO_H

#include <cstdint>

#include "common/logging.h"
#include "tm/txdesc.h"

namespace tmemc::tm
{

class Runtime;

/** Abstract STM algorithm. */
class Algo
{
  public:
    virtual ~Algo() = default;

    /** Stable algorithm name for reports. */
    virtual const char *name() const = 0;

    /** Begin a speculative attempt (serial mode bypasses the algo). */
    virtual void begin(Runtime &rt, TxDesc &d) = 0;

    /**
     * Begin an invisible-reader (read-only fast path) attempt.
     * @return false when the algorithm has no fast path; the caller
     *         must then begin() on the full path instead.
     */
    virtual bool
    beginRO(Runtime &rt, TxDesc &d)
    {
        (void)rt;
        (void)d;
        return false;
    }

    /**
     * Fast-path load: validate the word against the begin snapshot
     * without recording it in any read set. Only called between a
     * successful beginRO() and commit/rollback; a conflict throws
     * TxAbort (there is no read set to extend or revalidate).
     */
    virtual std::uint64_t
    loadWordRO(Runtime &rt, TxDesc &d, std::uintptr_t word_addr)
    {
        (void)rt;
        (void)d;
        (void)word_addr;
        panic("loadWordRO on an algorithm without a read-only fast path");
    }

    /**
     * Transactional load of the aligned word at @p word_addr.
     * @return The full 64-bit word (callers extract masked bytes).
     */
    virtual std::uint64_t loadWord(Runtime &rt, TxDesc &d,
                                   std::uintptr_t word_addr) = 0;

    /**
     * Transactional store of @p mask bytes of @p val to the aligned
     * word at @p word_addr.
     */
    virtual void storeWord(Runtime &rt, TxDesc &d, std::uintptr_t word_addr,
                           std::uint64_t val, std::uint64_t mask) = 0;

    /**
     * Attempt to commit; throws TxAbort if validation fails.
     * @return A commit timestamp the orchestration must quiesce on
     *         (privatization safety / safe reclamation), or 0 when no
     *         quiescence is needed (read-only commits).
     */
    virtual std::uint64_t commit(Runtime &rt, TxDesc &d) = 0;

    /** Undo all speculative effects and release all locks. */
    virtual void rollback(Runtime &rt, TxDesc &d) = 0;

    /** True when the attempt has made no writes. */
    virtual bool isReadOnly(const TxDesc &d) const = 0;
};

/** Singleton accessors, defined by the respective algo_*.cc files. */
Algo &gccEagerAlgo();
Algo &lazyAlgo();
Algo &norecAlgo();
Algo &serialAlgo();
Algo &raAlgo();

/** Resolve an AlgoKind to its singleton. */
Algo &algoFor(AlgoKind kind);

} // namespace tmemc::tm

#endif // TMEMC_TM_ALGO_H
